#include "grid/federation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"

namespace spice::grid {

namespace {
double sim_us(double hours) { return hours * obs::kTraceUsPerHour; }
}  // namespace

Site& Federation::add_site(const SiteSpec& spec) {
  SPICE_REQUIRE(find(spec.name) == nullptr, "duplicate site name: " + spec.name);
  sites_.push_back(std::make_unique<Site>(spec, events_, table_));
  Site& site = *sites_.back();
  site.set_trace_sampling(trace_sample_);
  site.set_row_completion_handler([this](JobRow row) {
    // Materialize the compatibility view only when someone wants it, and
    // before row listeners run — a broker may move the row out of its
    // terminal state (requeue), which must not leak into the Job records.
    if (!listeners_.empty()) {
      const Job job = table_.materialize(row);
      for (const auto& listener : listeners_) listener(job);
    }
    for (const auto& [id, listener] : row_listeners_) listener(row);
  });
  site.set_recovery_handler([this, &site] {
    for (const auto& [id, listener] : recovery_listeners_) listener(site);
  });
  return site;
}

Site* Federation::find(const std::string& name) {
  for (const auto& s : sites_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

std::vector<Site*> Federation::sites_in_grid(const std::string& grid) {
  std::vector<Site*> out;
  for (const auto& s : sites_) {
    if (s->spec().grid == grid) out.push_back(s.get());
  }
  return out;
}

int Federation::total_processors() const {
  int total = 0;
  for (const auto& s : sites_) total += s->spec().processors;
  return total;
}

Federation::ListenerId Federation::add_row_listener(RowListener listener) {
  const ListenerId id = next_listener_id_++;
  row_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Federation::remove_row_listener(ListenerId id) {
  std::erase_if(row_listeners_, [id](const auto& entry) { return entry.first == id; });
}

Federation::ListenerId Federation::add_recovery_listener(RecoveryListener listener) {
  const ListenerId id = next_listener_id_++;
  recovery_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Federation::remove_recovery_listener(ListenerId id) {
  std::erase_if(recovery_listeners_,
                [id](const auto& entry) { return entry.first == id; });
}

void Federation::set_trace_job_sampling(std::uint32_t n) {
  trace_sample_ = n == 0 ? 1 : n;
  for (const auto& s : sites_) s->set_trace_sampling(trace_sample_);
}

double RetryPolicy::delay_hours(JobId job, int attempt) const {
  SPICE_REQUIRE(attempt >= 1, "retry attempts count from 1");
  double delay = base_backoff_hours;
  for (int a = 1; a < attempt && delay < max_backoff_hours; ++a) delay *= backoff_factor;
  delay = std::min(delay, max_backoff_hours);
  // Deterministic jitter from (seed, job, attempt): identical reruns stay
  // bit-identical, but co-failing jobs never retry in lockstep.
  SplitMix64 mix(seed ^ (job * 0x9e3779b97f4a7c15ULL) ^
                 (static_cast<std::uint64_t>(attempt) << 32));
  const double unit =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53;  // uniform [0, 1)
  return delay * (1.0 - jitter_fraction + 2.0 * jitter_fraction * unit);
}

double RetryPolicy::delay_hours(JobId job, int attempt, ChoiceOracle* oracle) const {
  if (oracle == nullptr || jitter_fraction <= 0.0) return delay_hours(job, attempt);
  SPICE_REQUIRE(attempt >= 1, "retry attempts count from 1");
  SPICE_REQUIRE(oracle_jitter_levels >= 1, "need at least one jitter level");
  double delay = base_backoff_hours;
  for (int a = 1; a < attempt && delay < max_backoff_hours; ++a) delay *= backoff_factor;
  delay = std::min(delay, max_backoff_hours);
  // Enumerable jitter: the oracle picks one of `oracle_jitter_levels`
  // mid-quantile points of the seeded draw's uniform [0, 1) range.
  const auto levels = static_cast<std::size_t>(oracle_jitter_levels);
  const std::size_t k = oracle->choose("retry.jitter", levels);
  const double unit = (static_cast<double>(k) + 0.5) / static_cast<double>(levels);
  return delay * (1.0 - jitter_fraction + 2.0 * jitter_fraction * unit);
}

std::uint32_t Broker::trace_track() {
  obs::Tracer* tracer = federation_.events().tracer();
  if (tracer == nullptr) return 0;
  if (trace_track_ == 0) trace_track_ = tracer->new_track("broker");
  return trace_track_;
}

bool Broker::traced(JobRow row) const {
  if (federation_.events().tracer() == nullptr) return false;
  const std::uint32_t sample = federation_.trace_job_sampling();
  return sample <= 1 || federation_.jobs().id(row) % sample == 0;
}

Broker::Broker(Federation& federation, CampaignConfig config)
    : federation_(federation), config_(std::move(config)) {
  SPICE_REQUIRE(!config_.jobs.empty() ||
                    (config_.job_factory != nullptr && config_.job_count > 0),
                "campaign has no jobs");
  SPICE_REQUIRE(config_.completion_floor >= 0.0 && config_.completion_floor <= 1.0,
                "completion floor must be a fraction");
  row_listener_ = federation_.add_row_listener([this](JobRow row) { on_row_done(row); });
  recovery_listener_ =
      federation_.add_recovery_listener([this](Site&) { release_held(); });
}

Broker::~Broker() {
  federation_.remove_row_listener(row_listener_);
  federation_.remove_recovery_listener(recovery_listener_);
}

void Broker::submit_all() {
  SPICE_REQUIRE(!submitted_, "campaign already submitted");
  submitted_ = true;
  result_.submit_time = federation_.events().now();
  // Under an oracle the RoundRobin rotation's starting site is a choice
  // point: production runs always start at 0, but nothing about the
  // invariants may depend on the phase, so grid/mc enumerates it.
  if (config_.oracle != nullptr && config_.policy == BrokerPolicy::RoundRobin &&
      federation_.sites().size() > 1) {
    round_robin_next_ =
        config_.oracle->choose("broker.rr_offset", federation_.sites().size());
  }
  const std::size_t n = config_.jobs.empty() ? config_.job_count : config_.jobs.size();
  result_.requested = n;
  result_.completion_floor = config_.completion_floor;
  outstanding_ = n;
  JobTable& table = federation_.jobs();
  for (std::size_t i = 0; i < n; ++i) {
    Job job = config_.jobs.empty() ? config_.job_factory(i) : config_.jobs[i];
    job.kind = JobKind::Campaign;
    if (job.checkpoint_interval_hours <= 0.0) {
      job.checkpoint_interval_hours = config_.checkpoint_interval_hours;
    }
    dispatch(table.insert(job), kNoSite);
  }
}

Site* Broker::choose_site(JobRow row, SiteId exclude) {
  JobTable& table = federation_.jobs();
  const int procs = table.processors(row);
  usable_.clear();
  for (const auto& s : federation_.sites()) {
    if (s->site_id() == exclude) continue;
    if (s->in_outage()) continue;
    if (!s->spec().grid_enabled) continue;
    if (procs > s->spec().processors) continue;
    if (!config_.restrict_grid.empty() && s->spec().grid != config_.restrict_grid) continue;
    if (config_.policy == BrokerPolicy::SingleSite && s->name() != config_.single_site) continue;
    usable_.push_back(s.get());
  }
  if (usable_.empty()) return nullptr;
  switch (config_.policy) {
    case BrokerPolicy::SingleSite:
      return usable_.front();
    case BrokerPolicy::RoundRobin: {
      // Rotate over the FULL federation site list, skipping unusable
      // entries, so an outage or per-retry exclusion does not shift the
      // rotation phase of every later dispatch.
      const auto& all = federation_.sites();
      for (std::size_t k = 0; k < all.size(); ++k) {
        Site* candidate = all[(round_robin_next_ + k) % all.size()].get();
        if (std::find(usable_.begin(), usable_.end(), candidate) == usable_.end()) continue;
        round_robin_next_ = (round_robin_next_ + k + 1) % all.size();
        return candidate;
      }
      return usable_.front();  // unreachable: usable ⊆ all
    }
    case BrokerPolicy::LeastBacklog: {
      Site* best = nullptr;
      double best_load = std::numeric_limits<double>::infinity();
      const double runtime = table.runtime_hours(row);
      for (Site* s : usable_) {
        // Queued work per processor, scaled by speed so faster machines
        // look cheaper for the same backlog.
        const double load =
            (s->backlog_hours() + runtime * procs / s->spec().processors) /
            s->spec().speed;
        if (load < best_load) {
          best_load = load;
          best = s;
        }
      }
      return best;
    }
  }
  return usable_.front();
}

bool Broker::feasible_somewhere(JobRow row) const {
  const int procs = federation_.jobs().processors(row);
  for (const auto& s : federation_.sites()) {
    if (!s->spec().grid_enabled) continue;
    if (procs > s->spec().processors) continue;
    if (!config_.restrict_grid.empty() && s->spec().grid != config_.restrict_grid) continue;
    if (config_.policy == BrokerPolicy::SingleSite && s->name() != config_.single_site)
      continue;
    return true;
  }
  return false;
}

void Broker::dispatch(JobRow row, SiteId exclude) {
  {
    static obs::Counter& dispatches = obs::metrics().counter("grid.broker.dispatches");
    dispatches.add(1);
  }
  Site* site = choose_site(row, exclude);
  if (site == nullptr) {
    // No site can take it RIGHT NOW. If some site could ever run it, park
    // it in the held queue instead of losing it (every site momentarily in
    // outage is the situation SPICE's production runs had to survive).
    if (feasible_somewhere(row)) {
      hold(row);
    } else {
      fail_permanently(row, /*release_row=*/true);
    }
    return;
  }
  if (federation_.jobs().completed_fraction(row) > 0.0) result_.checkpoint_restarts += 1;
  if (traced(row)) {
    federation_.events().tracer()->instant(
        federation_.jobs().display_name(row), "grid.broker.dispatch",
        sim_us(federation_.events().now()), trace_track(), "-> " + site->name());
  }
  site->submit_row(row);
}

void Broker::hold(JobRow row) {
  JobTable& table = federation_.jobs();
  table.holds(row) += 1;
  if (table.holds(row) > config_.retry.max_holds) {
    fail_permanently(row, /*release_row=*/true);
    return;
  }
  result_.held_dispatches += 1;
  table.set_state(row, RowState::Held);
  table.site(row) = kNoSite;
  const double delay = config_.retry.delay_hours(
      table.id(row), table.requeues(row) + table.holds(row), config_.oracle);
  {
    static obs::Counter& holds = obs::metrics().counter("grid.broker.holds");
    holds.add(1);
  }
  // Async span over the park: begin here, end where the job leaves the
  // held list (backoff timer or site recovery). Paired by (category, id);
  // the hold count disambiguates repeated parks of the same job.
  if (traced(row)) {
    federation_.events().tracer()->async_begin(
        table.display_name(row) + " (held)", "grid.broker.held",
        (table.id(row) << 8) | static_cast<std::uint64_t>(table.holds(row) & 0xff),
        sim_us(federation_.events().now()), trace_track());
  }
  // The timer owns the row's token while Held; release_held cancels it so
  // a recovery-released job never gets a second dispatch from a stale
  // timer.
  table.event_token(row) =
      federation_.events().after(delay, [this, row] { retry_held(row); });
}

void Broker::retry_held(JobRow row) {
  JobTable& table = federation_.jobs();
  if (table.state(row) != RowState::Held) return;  // armour; tokens are cancelled
  table.event_token(row) = kInvalidToken;
  end_held_span(row);
  table.set_state(row, RowState::Pending);
  dispatch(row, kNoSite);
}

void Broker::release_held() {
  JobTable& table = federation_.jobs();
  held_batch_.clear();
  for (JobRow row = table.head(RowState::Held); row != kNoRow; row = table.next(row)) {
    held_batch_.push_back(row);
  }
  // Dispatch outside the list walk: a re-hold relinks the row at the tail.
  for (const JobRow row : held_batch_) {
    federation_.events().cancel(table.event_token(row));
    table.event_token(row) = kInvalidToken;
    end_held_span(row);
    table.set_state(row, RowState::Pending);
    dispatch(row, kNoSite);
  }
}

void Broker::end_held_span(JobRow row) {
  if (traced(row)) {
    JobTable& table = federation_.jobs();
    federation_.events().tracer()->async_end(
        table.display_name(row) + " (held)", "grid.broker.held",
        (table.id(row) << 8) | static_cast<std::uint64_t>(table.holds(row) & 0xff),
        sim_us(federation_.events().now()), trace_track());
  }
}

void Broker::fail_permanently(JobRow row, bool release_row) {
  JobTable& table = federation_.jobs();
  table.set_state(row, RowState::Failed);
  table.end_time(row) = federation_.events().now();
  {
    static obs::Counter& failures = obs::metrics().counter("grid.broker.permanent_failures");
    failures.add(1);
  }
  if (traced(row)) {
    federation_.events().tracer()->instant(table.display_name(row), "grid.broker.gave_up",
                                           sim_us(table.end_time(row)), trace_track());
  }
  result_.failed += 1;
  // Everything a permanently failed job burned is wasted: its checkpoints
  // are never resumed.
  result_.wasted_cpu_hours += table.consumed_cpu_hours(row);
  stream_.on_failed(table.consumed_cpu_hours(row));
  result_.makespan_hours =
      std::max(result_.makespan_hours, table.end_time(row) - result_.submit_time);
  if (config_.keep_finished_jobs) result_.finished_jobs.push_back(table.materialize(row));
  SPICE_ENSURE(outstanding_ > 0, "job accounting underflow");
  --outstanding_;
  if (release_row) table.release(row);
}

void Broker::on_row_done(JobRow row) {
  JobTable& table = federation_.jobs();
  if (table.kind(row) != JobKind::Campaign) return;
  if (table.state(row) == RowState::Completed) {
    SPICE_ENSURE(outstanding_ > 0, "job accounting underflow");
    --outstanding_;
    result_.completed += 1;
    result_.total_cpu_hours += table.consumed_cpu_hours(row);
    result_.credited_cpu_hours +=
        table.consumed_cpu_hours(row) - table.wasted_cpu_hours(row);
    result_.wasted_cpu_hours += table.wasted_cpu_hours(row);
    if (config_.keep_finished_jobs) result_.finished_jobs.push_back(table.materialize(row));
    const double wait = table.start_time(row) - table.submit_time(row);
    result_.mean_wait_hours += wait;  // finalized in result()
    result_.max_wait_hours = std::max(result_.max_wait_hours, wait);
    result_.makespan_hours =
        std::max(result_.makespan_hours, table.end_time(row) - result_.submit_time);
    stream_.on_completed(table.processors(row), table.submit_time(row),
                         table.start_time(row), table.end_time(row),
                         table.consumed_cpu_hours(row), table.wasted_cpu_hours(row),
                         table.requeues(row), table.site(row));
    return;  // row stays Completed; the site releases it after the fan-out
  }
  // Failed mid-run (outage): requeue with exponential backoff if budget
  // remains. Checkpoint credit lives in the row, so the re-run only
  // covers the lost tail.
  if (table.requeues(row) >= config_.max_requeues) {
    // Inside the site's completion fan-out: leave the terminal row for the
    // site to release.
    fail_permanently(row, /*release_row=*/false);
    return;
  }
  {
    static obs::Counter& requeues = obs::metrics().counter("grid.broker.requeues");
    requeues.add(1);
  }
  table.requeues(row) += 1;
  const SiteId failed_site = table.site(row);
  // Claiming the row (Failed → Backoff) keeps it alive past the fan-out.
  table.set_state(row, RowState::Backoff);
  const double delay =
      config_.retry.delay_hours(table.id(row), table.requeues(row), config_.oracle);
  table.event_token(row) =
      federation_.events().after(delay, [this, row, failed_site] {
        federation_.jobs().set_state(row, RowState::Pending);
        federation_.jobs().event_token(row) = kInvalidToken;
        dispatch(row, failed_site);
      });
}

CampaignResult Broker::result() const {
  SPICE_REQUIRE(done(), "campaign still in flight");
  CampaignResult finalized = result_;
  if (result_.completed > 0) {
    finalized.mean_wait_hours = result_.mean_wait_hours / static_cast<double>(result_.completed);
  }
  finalized.wait_stats = stream_.wait_statistics();
  finalized.site_shares = stream_.site_shares(federation_.jobs());
  finalized.jobs_per_site = stream_.jobs_per_site(federation_.jobs());
  finalized.cpu = stream_.cpu_accounting();
  return finalized;
}

void build_spice_federation(Federation& federation) {
  // US TeraGrid nodes used by SPICE (§III, Fig. 5) with 2005-era scale.
  federation.add_site({.name = "NCSA", .grid = "TeraGrid", .processors = 1744,
                       .speed = 1.0, .hidden_ip = false, .lightpath = true});
  federation.add_site({.name = "SDSC", .grid = "TeraGrid", .processors = 512,
                       .speed = 1.0, .hidden_ip = false, .lightpath = true});
  federation.add_site({.name = "PSC", .grid = "TeraGrid", .processors = 2048,
                       .speed = 1.1, .hidden_ip = true, .lightpath = true});
  // UK NGS high-end nodes ("used all nodes on the UK high-end NGS").
  federation.add_site({.name = "Manchester", .grid = "NGS", .processors = 256,
                       .speed = 0.9, .hidden_ip = false, .lightpath = true});
  federation.add_site({.name = "Oxford", .grid = "NGS", .processors = 128,
                       .speed = 0.9, .hidden_ip = false, .lightpath = false});
  federation.add_site({.name = "Leeds", .grid = "NGS", .processors = 256,
                       .speed = 0.9, .hidden_ip = false, .lightpath = false});
  federation.add_site({.name = "RAL", .grid = "NGS", .processors = 128,
                       .speed = 0.9, .hidden_ip = false, .lightpath = false});
  // HPCx: big but never usable (§V-C.2: immature middleware deployment,
  // hidden IP, no lightpath) — in the model, out of the broker's reach.
  federation.add_site({.name = "HPCx", .grid = "NGS", .processors = 1600,
                       .speed = 1.2, .hidden_ip = true, .lightpath = false,
                       .grid_enabled = false});
}

void build_synthetic_federation(Federation& federation, std::size_t n_sites,
                                std::uint64_t seed) {
  SPICE_REQUIRE(n_sites > 0, "synthetic federation needs sites");
  static const char* kGrids[] = {"TeraGrid", "NGS", "DEISA", "OSG"};
  static const int kSizes[] = {128, 256, 512, 1024};
  Rng rng = Rng::stream(seed, 0x73697465ULL /*"site"*/, n_sites);
  for (std::size_t i = 0; i < n_sites; ++i) {
    SiteSpec spec;
    spec.name = "site" + std::to_string(i);
    spec.grid = kGrids[i % 4];
    spec.processors = kSizes[rng.uniform_index(4)];
    spec.speed = rng.uniform(0.8, 1.2);
    federation.add_site(spec);
  }
}

}  // namespace spice::grid
