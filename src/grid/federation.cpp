#include "grid/federation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"

namespace spice::grid {

namespace {
double sim_us(double hours) { return hours * obs::kTraceUsPerHour; }
}  // namespace

std::uint32_t Broker::trace_track() {
  obs::Tracer* tracer = federation_.events().tracer();
  if (tracer == nullptr) return 0;
  if (trace_track_ == 0) trace_track_ = tracer->new_track("broker");
  return trace_track_;
}

Site& Federation::add_site(const SiteSpec& spec) {
  SPICE_REQUIRE(find(spec.name) == nullptr, "duplicate site name: " + spec.name);
  sites_.push_back(std::make_unique<Site>(spec, events_));
  Site& site = *sites_.back();
  site.set_completion_handler([this](const Job& job) {
    for (const auto& listener : listeners_) listener(job);
  });
  site.set_recovery_handler([this, &site] {
    for (const auto& listener : recovery_listeners_) listener(site);
  });
  return site;
}

Site* Federation::find(const std::string& name) {
  for (const auto& s : sites_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

std::vector<Site*> Federation::sites_in_grid(const std::string& grid) {
  std::vector<Site*> out;
  for (const auto& s : sites_) {
    if (s->spec().grid == grid) out.push_back(s.get());
  }
  return out;
}

int Federation::total_processors() const {
  int total = 0;
  for (const auto& s : sites_) total += s->spec().processors;
  return total;
}

double RetryPolicy::delay_hours(JobId job, int attempt) const {
  SPICE_REQUIRE(attempt >= 1, "retry attempts count from 1");
  double delay = base_backoff_hours;
  for (int a = 1; a < attempt && delay < max_backoff_hours; ++a) delay *= backoff_factor;
  delay = std::min(delay, max_backoff_hours);
  // Deterministic jitter from (seed, job, attempt): identical reruns stay
  // bit-identical, but co-failing jobs never retry in lockstep.
  SplitMix64 mix(seed ^ (job * 0x9e3779b97f4a7c15ULL) ^
                 (static_cast<std::uint64_t>(attempt) << 32));
  const double unit =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53;  // uniform [0, 1)
  return delay * (1.0 - jitter_fraction + 2.0 * jitter_fraction * unit);
}

Broker::Broker(Federation& federation, CampaignConfig config)
    : federation_(federation), config_(std::move(config)) {
  SPICE_REQUIRE(!config_.jobs.empty(), "campaign has no jobs");
  SPICE_REQUIRE(config_.completion_floor >= 0.0 && config_.completion_floor <= 1.0,
                "completion floor must be a fraction");
  federation_.add_listener([this](const Job& job) { on_job_done(job); });
  federation_.add_recovery_listener([this](Site&) { release_held(); });
}

void Broker::submit_all() {
  SPICE_REQUIRE(!submitted_, "campaign already submitted");
  submitted_ = true;
  result_.submit_time = federation_.events().now();
  result_.requested = config_.jobs.size();
  result_.completion_floor = config_.completion_floor;
  outstanding_ = config_.jobs.size();
  for (auto& job : config_.jobs) {
    job.kind = JobKind::Campaign;
    if (job.checkpoint_interval_hours <= 0.0) {
      job.checkpoint_interval_hours = config_.checkpoint_interval_hours;
    }
    dispatch(job, "");
  }
}

Site* Broker::choose_site(const Job& job, const std::string& exclude) {
  std::vector<Site*> usable;
  for (const auto& s : federation_.sites()) {
    if (s->name() == exclude) continue;
    if (s->in_outage()) continue;
    if (!s->spec().grid_enabled) continue;
    if (job.processors > s->spec().processors) continue;
    if (!config_.restrict_grid.empty() && s->spec().grid != config_.restrict_grid) continue;
    if (config_.policy == BrokerPolicy::SingleSite && s->name() != config_.single_site) continue;
    usable.push_back(s.get());
  }
  if (usable.empty()) return nullptr;
  switch (config_.policy) {
    case BrokerPolicy::SingleSite:
      return usable.front();
    case BrokerPolicy::RoundRobin: {
      // Rotate over the FULL federation site list, skipping unusable
      // entries, so an outage or per-retry exclusion does not shift the
      // rotation phase of every later dispatch.
      const auto& all = federation_.sites();
      for (std::size_t k = 0; k < all.size(); ++k) {
        Site* candidate = all[(round_robin_next_ + k) % all.size()].get();
        if (std::find(usable.begin(), usable.end(), candidate) == usable.end()) continue;
        round_robin_next_ = (round_robin_next_ + k + 1) % all.size();
        return candidate;
      }
      return usable.front();  // unreachable: usable ⊆ all
    }
    case BrokerPolicy::LeastBacklog: {
      Site* best = nullptr;
      double best_load = std::numeric_limits<double>::infinity();
      for (Site* s : usable) {
        // Queued work per processor, scaled by speed so faster machines
        // look cheaper for the same backlog.
        const double load = (s->backlog_hours() + job.runtime_hours * job.processors /
                                                      s->spec().processors) /
                            s->spec().speed;
        if (load < best_load) {
          best_load = load;
          best = s;
        }
      }
      return best;
    }
  }
  return usable.front();
}

bool Broker::feasible_somewhere(const Job& job) const {
  for (const auto& s : federation_.sites()) {
    if (!s->spec().grid_enabled) continue;
    if (job.processors > s->spec().processors) continue;
    if (!config_.restrict_grid.empty() && s->spec().grid != config_.restrict_grid) continue;
    if (config_.policy == BrokerPolicy::SingleSite && s->name() != config_.single_site)
      continue;
    return true;
  }
  return false;
}

void Broker::dispatch(Job job, const std::string& exclude) {
  {
    static obs::Counter& dispatches = obs::metrics().counter("grid.broker.dispatches");
    dispatches.add(1);
  }
  Site* site = choose_site(job, exclude);
  if (site == nullptr) {
    // No site can take it RIGHT NOW. If some site could ever run it, park
    // it in the held queue instead of losing it (every site momentarily in
    // outage is the situation SPICE's production runs had to survive).
    if (feasible_somewhere(job)) {
      hold(std::move(job));
    } else {
      fail_permanently(std::move(job));
    }
    return;
  }
  if (job.completed_fraction > 0.0) result_.checkpoint_restarts += 1;
  if (obs::Tracer* tracer = federation_.events().tracer()) {
    tracer->instant(job.name, "grid.broker.dispatch",
                    sim_us(federation_.events().now()), trace_track(),
                    "-> " + site->name());
  }
  site->submit(std::move(job));
}

void Broker::hold(Job job) {
  job.holds += 1;
  if (job.holds > config_.retry.max_holds) {
    fail_permanently(std::move(job));
    return;
  }
  result_.held_dispatches += 1;
  job.state = JobState::Pending;
  job.site.clear();
  const JobId id = job.id;
  const double delay = config_.retry.delay_hours(id, job.requeues + job.holds);
  {
    static obs::Counter& holds = obs::metrics().counter("grid.broker.holds");
    holds.add(1);
  }
  // Async span over the park: begin here, end where the job leaves held_
  // (backoff timer or site recovery). Paired by (category, id); the hold
  // count disambiguates repeated parks of the same job.
  if (obs::Tracer* tracer = federation_.events().tracer()) {
    tracer->async_begin(job.name + " (held)", "grid.broker.held",
                        (id << 8) | static_cast<std::uint64_t>(job.holds & 0xff),
                        sim_us(federation_.events().now()), trace_track());
  }
  held_.push_back(std::move(job));
  federation_.events().after(delay, [this, id] { retry_held(id); });
}

void Broker::retry_held(JobId id) {
  const auto it = std::find_if(held_.begin(), held_.end(),
                               [id](const Job& j) { return j.id == id; });
  if (it == held_.end()) return;  // already released by a site recovery
  Job job = std::move(*it);
  held_.erase(it);
  end_held_span(job);
  dispatch(std::move(job), "");
}

void Broker::release_held() {
  std::vector<Job> parked;
  parked.swap(held_);
  for (auto& job : parked) {
    end_held_span(job);
    dispatch(std::move(job), "");
  }
}

void Broker::end_held_span(const Job& job) {
  if (obs::Tracer* tracer = federation_.events().tracer()) {
    tracer->async_end(job.name + " (held)", "grid.broker.held",
                      (job.id << 8) | static_cast<std::uint64_t>(job.holds & 0xff),
                      sim_us(federation_.events().now()), trace_track());
  }
}

void Broker::fail_permanently(Job job) {
  job.state = JobState::Failed;
  job.end_time = federation_.events().now();
  {
    static obs::Counter& failures = obs::metrics().counter("grid.broker.permanent_failures");
    failures.add(1);
  }
  if (obs::Tracer* tracer = federation_.events().tracer()) {
    tracer->instant(job.name, "grid.broker.gave_up", sim_us(job.end_time), trace_track());
  }
  result_.failed += 1;
  // Everything a permanently failed job burned is wasted: its checkpoints
  // are never resumed.
  result_.wasted_cpu_hours += job.consumed_cpu_hours;
  result_.makespan_hours =
      std::max(result_.makespan_hours, job.end_time - result_.submit_time);
  result_.finished_jobs.push_back(std::move(job));
  SPICE_ENSURE(outstanding_ > 0, "job accounting underflow");
  --outstanding_;
}

void Broker::on_job_done(const Job& job) {
  if (job.kind != JobKind::Campaign) return;
  if (job.state == JobState::Completed) {
    SPICE_ENSURE(outstanding_ > 0, "job accounting underflow");
    --outstanding_;
    result_.completed += 1;
    result_.total_cpu_hours += job.consumed_cpu_hours;
    result_.credited_cpu_hours += job.consumed_cpu_hours - job.wasted_cpu_hours;
    result_.wasted_cpu_hours += job.wasted_cpu_hours;
    result_.jobs_per_site[job.site] += 1;
    result_.finished_jobs.push_back(job);
    const double wait = job.wait_hours();
    result_.mean_wait_hours += wait;  // finalized in result()
    result_.max_wait_hours = std::max(result_.max_wait_hours, wait);
    result_.makespan_hours =
        std::max(result_.makespan_hours, job.end_time - result_.submit_time);
    return;
  }
  // Failed mid-run (outage): requeue with exponential backoff if budget
  // remains. Checkpoint credit travels inside the job, so the re-run only
  // covers the lost tail.
  Job retry = job;
  if (retry.requeues >= config_.max_requeues) {
    fail_permanently(std::move(retry));
    return;
  }
  {
    static obs::Counter& requeues = obs::metrics().counter("grid.broker.requeues");
    requeues.add(1);
  }
  retry.requeues += 1;
  retry.state = JobState::Pending;
  const std::string failed_site = retry.site;
  const double delay = config_.retry.delay_hours(retry.id, retry.requeues);
  federation_.events().after(delay, [this, retry, failed_site]() mutable {
    dispatch(std::move(retry), failed_site);
  });
}

CampaignResult Broker::result() const {
  SPICE_REQUIRE(done(), "campaign still in flight");
  CampaignResult finalized = result_;
  if (result_.completed > 0) {
    finalized.mean_wait_hours = result_.mean_wait_hours / static_cast<double>(result_.completed);
  }
  return finalized;
}

void build_spice_federation(Federation& federation) {
  // US TeraGrid nodes used by SPICE (§III, Fig. 5) with 2005-era scale.
  federation.add_site({.name = "NCSA", .grid = "TeraGrid", .processors = 1744,
                       .speed = 1.0, .hidden_ip = false, .lightpath = true});
  federation.add_site({.name = "SDSC", .grid = "TeraGrid", .processors = 512,
                       .speed = 1.0, .hidden_ip = false, .lightpath = true});
  federation.add_site({.name = "PSC", .grid = "TeraGrid", .processors = 2048,
                       .speed = 1.1, .hidden_ip = true, .lightpath = true});
  // UK NGS high-end nodes ("used all nodes on the UK high-end NGS").
  federation.add_site({.name = "Manchester", .grid = "NGS", .processors = 256,
                       .speed = 0.9, .hidden_ip = false, .lightpath = true});
  federation.add_site({.name = "Oxford", .grid = "NGS", .processors = 128,
                       .speed = 0.9, .hidden_ip = false, .lightpath = false});
  federation.add_site({.name = "Leeds", .grid = "NGS", .processors = 256,
                       .speed = 0.9, .hidden_ip = false, .lightpath = false});
  federation.add_site({.name = "RAL", .grid = "NGS", .processors = 128,
                       .speed = 0.9, .hidden_ip = false, .lightpath = false});
  // HPCx: big but never usable (§V-C.2: immature middleware deployment,
  // hidden IP, no lightpath) — in the model, out of the broker's reach.
  federation.add_site({.name = "HPCx", .grid = "NGS", .processors = 1600,
                       .speed = 1.2, .hidden_ip = true, .lightpath = false,
                       .grid_enabled = false});
}

}  // namespace spice::grid
