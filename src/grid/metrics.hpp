#pragma once
// Campaign/site analytics in two forms:
//   * batch — computed from finished-job record vectors (the original
//     API, used by the batch-campaign bench and small scenarios);
//   * streaming — O(1)-memory accumulators updated at each completion
//     event, so a million-job campaign never retains per-job records.
// The streaming accumulators reproduce the batch numbers exactly for
// means/sums/max (same values added in the same order); quantiles are
// exact up to a configurable sample count, then switch to the P²
// estimator (common/statistics.hpp) with a small documented tolerance.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/statistics.hpp"
#include "grid/job.hpp"
#include "grid/job_table.hpp"

namespace spice::grid {

struct WaitStatistics {
  std::size_t jobs = 0;
  double mean_hours = 0.0;
  double median_hours = 0.0;
  double p95_hours = 0.0;
  double max_hours = 0.0;
};

/// Queue-wait statistics over completed jobs (Failed jobs are skipped).
[[nodiscard]] WaitStatistics wait_statistics(const std::vector<Job>& jobs);

/// Per-site share of the campaign: job count, CPU-hours and mean wait.
struct SiteShare {
  std::string site;
  std::size_t jobs = 0;
  double cpu_hours = 0.0;
  double mean_wait_hours = 0.0;
};

[[nodiscard]] std::vector<SiteShare> site_shares(const std::vector<Job>& jobs);

/// Number of campaign processors busy at time t (from the job records).
[[nodiscard]] int processors_in_use(const std::vector<Job>& jobs, double t);

/// Sampled concurrency timeline between the first submit and last end.
struct TimelinePoint {
  double time_hours = 0.0;
  int processors = 0;
};

[[nodiscard]] std::vector<TimelinePoint> concurrency_timeline(const std::vector<Job>& jobs,
                                                              std::size_t samples = 50);

/// Peak concurrent campaign processors (resolution: the sampled timeline).
[[nodiscard]] int peak_processors(const std::vector<Job>& jobs, std::size_t samples = 200);

/// Wasted-vs-credited CPU-hour accounting under failures and checkpoint-
/// credited restarts, aggregated from finished-job records.
struct CpuAccounting {
  double consumed_cpu_hours = 0.0;  ///< procs × wall over every attempt of every job
  double credited_cpu_hours = 0.0;  ///< consumed hours that produced kept work
  double wasted_cpu_hours = 0.0;    ///< lost tails + all burn of failed jobs
  std::size_t restarted_jobs = 0;   ///< completed jobs that survived ≥ 1 failure
  std::size_t checkpointed_restarts = 0;  ///< restarted jobs that resumed banked work

  [[nodiscard]] double efficiency() const {
    return consumed_cpu_hours > 0.0 ? credited_cpu_hours / consumed_cpu_hours : 1.0;
  }
};

[[nodiscard]] CpuAccounting cpu_accounting(const std::vector<Job>& jobs);

/// Streaming distribution summary: exact mean/max always (Welford), and
/// exact median/p95 while at most `exact_limit` samples were seen — the
/// raw values are buffered and fed through the same percentile() as the
/// batch path. Past the limit the buffer spills into P² marker estimators
/// and memory stays O(1).
class StreamingTailStats {
 public:
  explicit StreamingTailStats(std::size_t exact_limit = 1024);

  void add(double x);

  [[nodiscard]] std::size_t count() const { return moments_.count(); }
  [[nodiscard]] double mean() const { return moments_.count() > 0 ? moments_.mean() : 0.0; }
  [[nodiscard]] double max() const { return moments_.count() > 0 ? moments_.max() : 0.0; }
  [[nodiscard]] double median() const;
  [[nodiscard]] double p95() const;
  /// True while median()/p95() are exact percentiles of the sample.
  [[nodiscard]] bool exact() const { return !spilled_; }

 private:
  std::size_t exact_limit_;
  bool spilled_ = false;
  RunningStats moments_;
  std::vector<double> exact_;
  P2Quantile p50_{0.50};
  P2Quantile p95_{0.95};
};

/// Campaign metrics accumulated at completion/failure events — the
/// streaming equivalent of wait_statistics + site_shares + cpu_accounting
/// over the finished-job records, without keeping any.
class StreamingCampaignMetrics {
 public:
  explicit StreamingCampaignMetrics(std::size_t exact_limit = 1024);

  void on_completed(int processors, double submit_time, double start_time,
                    double end_time, double consumed_cpu_hours,
                    double wasted_cpu_hours, int requeues, SiteId site);
  void on_failed(double consumed_cpu_hours);

  [[nodiscard]] WaitStatistics wait_statistics() const;
  /// Per-site shares sorted by site name (matching the batch output);
  /// the table supplies the interned names.
  [[nodiscard]] std::vector<SiteShare> site_shares(const JobTable& table) const;
  [[nodiscard]] std::map<std::string, int> jobs_per_site(const JobTable& table) const;
  [[nodiscard]] CpuAccounting cpu_accounting() const { return cpu_; }

 private:
  struct SiteAccum {
    std::size_t jobs = 0;
    double cpu_hours = 0.0;
    double wait_sum = 0.0;
  };

  StreamingTailStats waits_;
  std::vector<SiteAccum> sites_;  ///< indexed by SiteId
  CpuAccounting cpu_;
};

}  // namespace spice::grid
