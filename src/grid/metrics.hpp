#pragma once
// Campaign/site analytics: queue-wait distributions, per-site utilization
// and a wall-clock timeline, computed from finished-job records. Used by
// the batch-campaign bench and by operators of the simulated federation.

#include <map>
#include <string>
#include <vector>

#include "grid/job.hpp"

namespace spice::grid {

struct WaitStatistics {
  std::size_t jobs = 0;
  double mean_hours = 0.0;
  double median_hours = 0.0;
  double p95_hours = 0.0;
  double max_hours = 0.0;
};

/// Queue-wait statistics over completed jobs (Failed jobs are skipped).
[[nodiscard]] WaitStatistics wait_statistics(const std::vector<Job>& jobs);

/// Per-site share of the campaign: job count, CPU-hours and mean wait.
struct SiteShare {
  std::string site;
  std::size_t jobs = 0;
  double cpu_hours = 0.0;
  double mean_wait_hours = 0.0;
};

[[nodiscard]] std::vector<SiteShare> site_shares(const std::vector<Job>& jobs);

/// Number of campaign processors busy at time t (from the job records).
[[nodiscard]] int processors_in_use(const std::vector<Job>& jobs, double t);

/// Sampled concurrency timeline between the first submit and last end.
struct TimelinePoint {
  double time_hours = 0.0;
  int processors = 0;
};

[[nodiscard]] std::vector<TimelinePoint> concurrency_timeline(const std::vector<Job>& jobs,
                                                              std::size_t samples = 50);

/// Peak concurrent campaign processors (resolution: the sampled timeline).
[[nodiscard]] int peak_processors(const std::vector<Job>& jobs, std::size_t samples = 200);

/// Wasted-vs-credited CPU-hour accounting under failures and checkpoint-
/// credited restarts, aggregated from finished-job records.
struct CpuAccounting {
  double consumed_cpu_hours = 0.0;  ///< procs × wall over every attempt of every job
  double credited_cpu_hours = 0.0;  ///< consumed hours that produced kept work
  double wasted_cpu_hours = 0.0;    ///< lost tails + all burn of failed jobs
  std::size_t restarted_jobs = 0;   ///< completed jobs that survived ≥ 1 failure
  std::size_t checkpointed_restarts = 0;  ///< restarted jobs that resumed banked work

  [[nodiscard]] double efficiency() const {
    return consumed_cpu_hours > 0.0 ? credited_cpu_hours / consumed_cpu_hours : 1.0;
  }
};

[[nodiscard]] CpuAccounting cpu_accounting(const std::vector<Job>& jobs);

}  // namespace spice::grid
