#pragma once
// Discrete-event simulation core for the grid substrate.
//
// Time unit: hours (the natural scale of batch queues and reservations).
// Events at equal times fire in scheduling order (a monotone sequence
// number breaks ties), which keeps every grid simulation deterministic.
//
// The default backend is an indexed two-level calendar/bucket queue
// (Brown-style): handlers live in a slab of stable slots, bucket entries
// carry (time, seq, slot, generation), and the token returned by
// at()/after() cancels a pending event in O(1) — the handler is destroyed
// immediately instead of firing as a no-op. Inserts and pops are O(1)
// amortized at any live-event count, which is what lets million-job
// campaigns run at O(active) cost. A plain binary-heap backend is kept for
// differential testing and as the "before" arm of bench/grid_scale.

#include <cstdint>
#include <functional>
#include <vector>

namespace spice::obs {
class Tracer;
}

namespace spice::grid {

/// Handle to a scheduled event: (slot, generation) packed into 64 bits.
/// kInvalidToken never names a live event, so it is safe to cancel blindly.
using EventToken = std::uint64_t;
inline constexpr EventToken kInvalidToken = 0;

/// Interception seam for enumerable nondeterminism. Components with a
/// bounded random choice (fault-injector draws, backoff jitter, the
/// RoundRobin start offset) route it through an installed oracle, which
/// returns an index in [0, n). Production code leaves oracles unset and
/// keeps its seeded RNG draws; the grid/mc explorer installs one and
/// enumerates every branch. `tag` names the choice point for replay
/// diagnostics and must be a string with static storage duration.
class ChoiceOracle {
 public:
  virtual ~ChoiceOracle() = default;
  virtual std::size_t choose(const char* tag, std::size_t n) = 0;
};

/// Same-timestamp scheduling seam. Events at equal times normally fire in
/// scheduling (seq) order; with a hook installed, step() reports each tie
/// group — all live events sharing the earliest pending timestamp — and
/// fires the member the hook picks. Index 0 is the seq-order head, so a
/// hook returning 0 reproduces the default schedule exactly.
class ScheduleHook {
 public:
  virtual ~ScheduleHook() = default;
  virtual std::size_t pick_tie(double time, std::size_t group_size) = 0;
};

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Calendar is the production backend; BinaryHeap exists for
  /// differential tests and baseline benchmarking.
  enum class Backend { Calendar, BinaryHeap };

  explicit EventQueue(Backend backend = Backend::Calendar);
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Attach a tracer recording the VIRTUAL timeline: sites and the broker
  /// emit spans with ts = now() × obs::kTraceUsPerHour, so one simulated
  /// hour renders as one hour in Perfetto. Not owned; nullptr detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Install a same-timestamp permutation hook (nullptr detaches). Not
  /// owned. With no hook the tie-group machinery is never touched and
  /// step() keeps its plain O(1) pop.
  void set_schedule_hook(ScheduleHook* hook) { hook_ = hook; }
  [[nodiscard]] ScheduleHook* schedule_hook() const { return hook_; }

  /// Deterministic digest of the pending-event set: now() plus the sorted
  /// multiset of live event timestamps. Sequence numbers and slot indices
  /// are deliberately excluded — they differ between interleavings that
  /// reach otherwise identical states, which would defeat the grid/mc
  /// explorer's stateful-hash pruning. What a pending event *does* is
  /// covered by the JobTable/Site fingerprints of the surrounding world.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Schedule `handler` at absolute time `t` (hours). Must not be in the
  /// past relative to now(). The returned token may be ignored, or kept to
  /// cancel the event before it fires.
  EventToken at(double t, Handler handler);

  /// Schedule after a delay from now().
  EventToken after(double delay, Handler handler) {
    return at(now_ + delay, std::move(handler));
  }

  /// Remove a pending event: its handler is destroyed now and will never
  /// run. Returns false (harmlessly) when the token is invalid, already
  /// fired, or already cancelled.
  bool cancel(EventToken token);

  /// True while the token's event is scheduled and not yet fired/cancelled.
  [[nodiscard]] bool pending(EventToken token) const;

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Live (scheduled, not yet fired or cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Pop and run the next event; returns false when the queue is empty.
  bool step();

  /// Run until the queue empties or `t_end` passes (events beyond t_end
  /// stay queued; now() advances to exactly t_end when it stops early).
  void run_until(double t_end);

  /// Run everything.
  void run();

 private:
  /// Queue entry: the (time, seq) priority plus the slab slot holding the
  /// handler. `gen` detects cancellation — a stale entry whose generation
  /// no longer matches its slot is skipped for free during pops.
  struct Entry {
    double time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Slot {
    Handler handler;
    std::uint32_t gen = 1;  ///< bumped on fire/cancel; entry match ⇒ live
  };

  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  [[nodiscard]] bool entry_live(const Entry& e) const {
    return slab_[e.slot].gen == e.gen;
  }

  std::uint32_t alloc_slot(Handler handler);
  void free_slot(std::uint32_t slot);
  void insert(const Entry& e);
  void insert_calendar(const Entry& e);
  /// Position cursors on the next live entry; false when the queue is
  /// empty. Mutates lazily (skips dead entries, sorts arrived buckets,
  /// rebuilds exhausted epochs) but never changes fire order.
  bool advance();
  bool advance_heap();
  /// Hook path: collect the live entries tied at the earliest pending
  /// timestamp (seq order) and return the one the hook picks. The chosen
  /// entry is NOT removed from its container — the caller frees its slot,
  /// which bumps the generation, and the stale container entry is skipped
  /// for free later exactly like a cancelled event.
  [[nodiscard]] Entry choose_tied_entry();
  /// Rebuild buckets around the pending entries (new epoch start, bucket
  /// count and width chosen from the live distribution).
  void rebuild(double from_time);
  void collect_live(std::vector<Entry>& out);
  [[nodiscard]] double pick_width(const std::vector<Entry>& live) const;

  Backend backend_;
  obs::Tracer* tracer_ = nullptr;
  ScheduleHook* hook_ = nullptr;
  std::vector<Entry> tie_scratch_;  ///< choose_tied_entry scratch
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;

  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_slots_;

  // Calendar backend: one epoch of buckets [epoch_, epoch_ + N·width_),
  // entries beyond it wait unsorted in overflow_ until an epoch rebuild
  // reaches them. The current bucket is kept sorted (same-time FIFO
  // appends are O(1) at its back); later buckets sort on arrival.
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;
  std::size_t cur_bucket_ = 0;
  std::size_t bucket_pos_ = 0;
  double epoch_ = 0.0;
  double width_ = 1.0;

  // BinaryHeap backend.
  std::vector<Entry> heap_;
};

}  // namespace spice::grid
