#pragma once
// Discrete-event simulation core for the grid substrate.
//
// Time unit: hours (the natural scale of batch queues and reservations).
// Events at equal times fire in scheduling order (a monotone sequence
// number breaks ties), which keeps every grid simulation deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace spice::obs {
class Tracer;
}

namespace spice::grid {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Attach a tracer recording the VIRTUAL timeline: sites and the broker
  /// emit spans with ts = now() × obs::kTraceUsPerHour, so one simulated
  /// hour renders as one hour in Perfetto. Not owned; nullptr detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Schedule `handler` at absolute time `t` (hours). Must not be in the
  /// past relative to now().
  void at(double t, Handler handler);

  /// Schedule after a delay from now().
  void after(double delay, Handler handler) { at(now_ + delay, std::move(handler)); }

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Pop and run the next event; returns false when the queue is empty.
  bool step();

  /// Run until the queue empties or `t_end` passes (events beyond t_end
  /// stay queued; now() advances to exactly t_end when it stops early).
  void run_until(double t_end);

  /// Run everything.
  void run();

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  obs::Tracer* tracer_ = nullptr;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace spice::grid
