#include "grid/workflow.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace spice::grid {

WorkflowEngine::WorkflowEngine(Federation& federation, BrokerPolicy policy)
    : federation_(federation), policy_(policy) {
  federation_.add_listener([this](const Job& job) { on_job_done(job); });
}

NodeId WorkflowEngine::add_node(Job job, std::vector<NodeId> dependencies) {
  SPICE_REQUIRE(!started_, "cannot add nodes after start()");
  SPICE_REQUIRE(job.id != 0, "workflow jobs need non-zero ids");
  for (const NodeId dep : dependencies) {
    SPICE_REQUIRE(dep < nodes_.size(), "dependency on unknown node");
  }
  SPICE_REQUIRE(!job_to_node_.contains(job.id), "duplicate job id in workflow");
  const auto id = static_cast<NodeId>(nodes_.size());
  job_to_node_[job.id] = id;
  nodes_.push_back(WorkflowNode{std::move(job), std::move(dependencies)});
  states_.push_back(NodeState::Waiting);
  requeues_left_.push_back(3);
  return id;
}

void WorkflowEngine::start() {
  SPICE_REQUIRE(!started_, "workflow already started");
  SPICE_REQUIRE(!nodes_.empty(), "workflow is empty");
  started_ = true;
  start_time_ = federation_.events().now();
  last_completion_ = start_time_;
  try_dispatch();
}

bool WorkflowEngine::done() const {
  if (!started_) return false;
  return std::none_of(states_.begin(), states_.end(), [](NodeState s) {
    return s == NodeState::Waiting || s == NodeState::Submitted;
  });
}

void WorkflowEngine::try_dispatch() {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (states_[id] != NodeState::Waiting) continue;
    const bool ready = std::all_of(
        nodes_[id].dependencies.begin(), nodes_[id].dependencies.end(),
        [this](NodeId dep) { return states_[dep] == NodeState::Completed; });
    const bool doomed = std::any_of(
        nodes_[id].dependencies.begin(), nodes_[id].dependencies.end(),
        [this](NodeId dep) { return states_[dep] == NodeState::Failed; });
    if (doomed) {
      states_[id] = NodeState::Failed;
      fail_dependents(id);
      continue;
    }
    if (!ready) continue;

    // Pick the least-loaded usable site (same heuristic as the broker).
    Site* best = nullptr;
    double best_load = std::numeric_limits<double>::infinity();
    for (const auto& site : federation_.sites()) {
      if (site->in_outage() || !site->spec().grid_enabled) continue;
      if (nodes_[id].job.processors > site->spec().processors) continue;
      if (policy_ == BrokerPolicy::SingleSite) {
        best = site.get();
        break;
      }
      const double load = site->backlog_hours() / site->spec().speed;
      if (load < best_load) {
        best_load = load;
        best = site.get();
      }
    }
    if (best == nullptr) {
      states_[id] = NodeState::Failed;
      fail_dependents(id);
      continue;
    }
    states_[id] = NodeState::Submitted;
    best->submit(nodes_[id].job);
  }
}

void WorkflowEngine::fail_dependents(NodeId id) {
  for (NodeId other = 0; other < nodes_.size(); ++other) {
    if (states_[other] != NodeState::Waiting) continue;
    const auto& deps = nodes_[other].dependencies;
    if (std::find(deps.begin(), deps.end(), id) != deps.end()) {
      states_[other] = NodeState::Failed;
      fail_dependents(other);
    }
  }
}

void WorkflowEngine::on_job_done(const Job& job) {
  const auto it = job_to_node_.find(job.id);
  if (it == job_to_node_.end()) return;  // background job
  const NodeId id = it->second;
  if (states_[id] != NodeState::Submitted) return;

  if (job.state == JobState::Completed) {
    states_[id] = NodeState::Completed;
    last_completion_ = std::max(last_completion_, job.end_time);
    try_dispatch();
    return;
  }
  // Failed: retry with the remaining budget, else fail the subtree.
  if (requeues_left_[id] > 0) {
    --requeues_left_[id];
    states_[id] = NodeState::Waiting;
    federation_.events().after(0.1, [this] { try_dispatch(); });
    return;
  }
  states_[id] = NodeState::Failed;
  fail_dependents(id);
  try_dispatch();
}

WorkflowResult WorkflowEngine::result() const {
  SPICE_REQUIRE(done(), "workflow still in flight");
  WorkflowResult out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    out.states[id] = states_[id];
    if (states_[id] == NodeState::Completed) ++out.completed;
    if (states_[id] == NodeState::Failed) ++out.failed;
  }
  out.makespan_hours = last_completion_ - start_time_;

  // Critical path over completed nodes (DAG ⇒ simple memoized depth).
  std::vector<std::size_t> depth(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {  // add_node order is topological
    if (states_[id] != NodeState::Completed) continue;
    std::size_t best = 0;
    for (const NodeId dep : nodes_[id].dependencies) best = std::max(best, depth[dep]);
    depth[id] = best + 1;
    out.critical_path_nodes = std::max(out.critical_path_nodes, depth[id]);
  }
  return out;
}

}  // namespace spice::grid
