#include "grid/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace spice::grid {

std::size_t generate_background_load(Site& site, EventQueue& events,
                                     const WorkloadParams& params) {
  SPICE_REQUIRE(params.target_utilization >= 0.0 && params.target_utilization < 1.0,
                "target utilization must be in [0, 1)");
  SPICE_REQUIRE(params.mean_runtime_hours > 0.0, "mean runtime must be positive");
  if (params.target_utilization == 0.0) return 0;

  // Job sizes: powers of two in [8, P/2], drawn uniformly over exponents —
  // small jobs dominate counts, large jobs dominate area, roughly matching
  // production batch logs.
  const int procs = site.spec().processors;
  std::vector<int> sizes;
  for (int s = 8; s <= std::max(8, procs / 2); s *= 2) sizes.push_back(std::min(s, procs));
  SPICE_REQUIRE(!sizes.empty(), "site too small for background load");
  double mean_size = 0.0;
  for (int s : sizes) mean_size += s;
  mean_size /= static_cast<double>(sizes.size());

  // Offered load = rate · mean_size · mean_runtime = util · P
  const double rate = params.target_utilization * procs /
                      (mean_size * params.mean_runtime_hours);  // jobs per hour
  const double mean_gap = 1.0 / rate;

  Rng rng = Rng::stream(params.seed, 0x6c6f6164 /*"load"*/,
                        std::hash<std::string>{}(site.name()));
  std::size_t count = 0;
  double t = rng.exponential(mean_gap);
  static std::uint64_t next_bg_id = 1'000'000;  // distinct from campaign ids
  while (t < params.horizon_hours) {
    Job job;
    job.id = next_bg_id++;
    job.kind = JobKind::Background;
    job.name = "bg-" + site.name() + "-" + std::to_string(count);
    job.processors = sizes[rng.uniform_index(sizes.size())];
    // Lognormal runtime with the requested mean (σ of log = 1).
    const double mu = std::log(params.mean_runtime_hours) - 0.5;
    job.runtime_hours = std::clamp(std::exp(rng.gaussian(mu, 1.0)), 0.1, 72.0);
    events.at(t, [&site, job] { Site& s = site; s.submit(job); });
    ++count;
    t += rng.exponential(mean_gap);
  }
  return count;
}

}  // namespace spice::grid
