#pragma once
// DAG workflow execution over the federation.
//
// The SPICE pipeline is itself a dependency graph — preprocessing
// simulations gate the production sweep, which gates the analysis — and
// 2005-era grid projects scripted exactly such chains by hand. The
// WorkflowEngine runs a DAG of grid jobs through a Broker-like dispatch:
// a node is submitted once every dependency has completed; failed nodes
// (after the per-job requeue budget) fail their dependents transitively.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "grid/federation.hpp"
#include "grid/job.hpp"

namespace spice::grid {

using NodeId = std::uint32_t;

struct WorkflowNode {
  Job job;
  std::vector<NodeId> dependencies;
};

enum class NodeState { Waiting, Submitted, Completed, Failed };

struct WorkflowResult {
  std::size_t completed = 0;
  std::size_t failed = 0;       ///< including transitively failed dependents
  double makespan_hours = 0.0;  ///< last completion − workflow start
  std::map<NodeId, NodeState> states;
  /// Longest dependency chain (nodes) actually executed — the DAG's
  /// critical-path length.
  std::size_t critical_path_nodes = 0;
};

class WorkflowEngine {
 public:
  WorkflowEngine(Federation& federation, BrokerPolicy policy = BrokerPolicy::LeastBacklog);

  /// Add a node; dependencies must refer to already-added nodes.
  NodeId add_node(Job job, std::vector<NodeId> dependencies = {});

  /// Submit every dependency-free node at the current simulation time.
  /// The rest dispatch as their dependencies complete (run the federation
  /// event queue to completion, then collect the result).
  void start();

  [[nodiscard]] bool done() const;
  [[nodiscard]] WorkflowResult result() const;

 private:
  void try_dispatch();
  void on_job_done(const Job& job);
  void fail_dependents(NodeId id);

  Federation& federation_;
  BrokerPolicy policy_;
  std::vector<WorkflowNode> nodes_;
  std::vector<NodeState> states_;
  std::vector<int> requeues_left_;
  std::map<JobId, NodeId> job_to_node_;
  double start_time_ = 0.0;
  double last_completion_ = 0.0;
  bool started_ = false;
};

}  // namespace spice::grid
