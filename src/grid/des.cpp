#include "grid/des.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace spice::grid {

void EventQueue::at(double t, Handler handler) {
  SPICE_REQUIRE(t >= now_, "cannot schedule an event in the past");
  SPICE_REQUIRE(handler != nullptr, "null event handler");
  events_.push(Event{t, next_seq_++, std::move(handler)});
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // alternative: copy the handler. Handlers are cheap closures; copy.
  Event e = events_.top();
  events_.pop();
  now_ = e.time;
  ++processed_;
  {
    static obs::Counter& dispatched = obs::metrics().counter("grid.des.events");
    dispatched.add(1);
  }
  e.handler();
  return true;
}

void EventQueue::run_until(double t_end) {
  while (!events_.empty() && events_.top().time <= t_end) step();
  if (now_ < t_end) now_ = t_end;
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace spice::grid
