#include "grid/des.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace spice::grid {

namespace {

constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 21;

EventToken pack_token(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(slot) + 1) << 32 | gen;
}

bool unpack_token(EventToken token, std::uint32_t& slot, std::uint32_t& gen) {
  if (token == kInvalidToken) return false;
  slot = static_cast<std::uint32_t>((token >> 32) - 1);
  gen = static_cast<std::uint32_t>(token & 0xffffffffu);
  return true;
}

}  // namespace

EventQueue::EventQueue(Backend backend) : backend_(backend) {
  if (backend_ == Backend::Calendar) buckets_.assign(kMinBuckets, {});
}

std::uint32_t EventQueue::alloc_slot(Handler handler) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  slab_[slot].handler = std::move(handler);
  return slot;
}

void EventQueue::free_slot(std::uint32_t slot) {
  slab_[slot].handler = nullptr;  // destroy captured state now
  ++slab_[slot].gen;
  free_slots_.push_back(slot);
  SPICE_ENSURE(live_ > 0, "event accounting underflow");
  --live_;
}

EventToken EventQueue::at(double t, Handler handler) {
  SPICE_REQUIRE(t >= now_, "cannot schedule an event in the past");
  SPICE_REQUIRE(handler != nullptr, "null event handler");
  const std::uint32_t slot = alloc_slot(std::move(handler));
  const Entry e{t, next_seq_++, slot, slab_[slot].gen};
  ++live_;
  insert(e);
  return pack_token(slot, e.gen);
}

bool EventQueue::cancel(EventToken token) {
  std::uint32_t slot;
  std::uint32_t gen;
  if (!unpack_token(token, slot, gen)) return false;
  if (slot >= slab_.size() || slab_[slot].gen != gen) return false;
  // The stale bucket/heap entry keeps (time, seq, slot, old gen) and is
  // skipped for free when its position is reached; the handler dies here.
  free_slot(slot);
  return true;
}

bool EventQueue::pending(EventToken token) const {
  std::uint32_t slot;
  std::uint32_t gen;
  if (!unpack_token(token, slot, gen)) return false;
  return slot < slab_.size() && slab_[slot].gen == gen &&
         slab_[slot].handler != nullptr;
}

void EventQueue::insert(const Entry& e) {
  if (backend_ == Backend::BinaryHeap) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(),
                   [](const Entry& a, const Entry& b) { return earlier(b, a); });
    return;
  }
  // Occupancy far from the bucket count ⇒ re-bucket around the live set.
  const std::size_t nb = buckets_.size();
  if ((live_ > nb * 4 && nb < kMaxBuckets) ||
      (live_ * 8 < nb && nb > kMinBuckets)) {
    rebuild(now_);
  }
  insert_calendar(e);
}

void EventQueue::insert_calendar(const Entry& e) {
  const double offset = (e.time - epoch_) / width_;
  if (offset >= static_cast<double>(buckets_.size())) {
    overflow_.push_back(e);
    return;
  }
  std::size_t idx = offset > 0.0 ? static_cast<std::size_t>(offset) : 0;
  // Exhausted buckets stay behind the cursor; anything mapping there
  // (e.time ≥ now_ always holds) belongs in the current bucket.
  if (idx <= cur_bucket_) {
    auto& bucket = buckets_[cur_bucket_];
    // Current bucket is kept sorted past the consumed prefix; same-time
    // FIFO appends land at the back, so the schedule-at-now case stays
    // O(1). Never insert before the cursor — a skipped (cancelled) entry
    // there may carry a later timestamp.
    const auto pos = std::lower_bound(
        bucket.begin() + static_cast<std::ptrdiff_t>(bucket_pos_), bucket.end(), e,
        earlier);
    bucket.insert(pos, e);
    return;
  }
  buckets_[idx].push_back(e);  // sorted when the cursor arrives
}

void EventQueue::collect_live(std::vector<Entry>& out) {
  for (auto& bucket : buckets_) {
    for (const Entry& e : bucket) {
      if (entry_live(e)) out.push_back(e);
    }
    bucket.clear();
  }
  for (const Entry& e : overflow_) {
    if (entry_live(e)) out.push_back(e);
  }
  overflow_.clear();
}

double EventQueue::pick_width(const std::vector<Entry>& live) const {
  if (live.size() < 2) return 1.0;
  // Sample event times spread across the whole live set (ceil-spaced so
  // the last sample lands near the back — front-only sampling once picked
  // a width from an equal-timestamp prefix while the tail spanned hours),
  // then set the bucket width to twice the median inter-event gap, so a
  // bucket holds a couple of events on average.
  std::vector<double> times;
  const std::size_t samples = std::min<std::size_t>(live.size(), 64);
  times.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    times.push_back(live[(i * live.size()) / samples].time);
  }
  std::sort(times.begin(), times.end());
  // Minimum width relative to the timestamp magnitude: far from t = 0 a
  // double's resolution is |t|·2⁻⁵², and a width below a few ulps maps
  // adjacent representable timestamps to buckets that are many indices
  // apart (or, after `(t − epoch)/width`, straight into overflow), so the
  // queue degenerates into a rebuild-per-event crawl.
  const double scale = std::max(std::abs(times.front()), std::abs(times.back()));
  const double min_width = std::max(1e-12, scale * 1e-14);
  std::vector<double> gaps;
  gaps.reserve(times.size());
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap = times[i] - times[i - 1];
    if (gap > 0.0) gaps.push_back(gap);
  }
  // All sampled gaps zero (every sampled event shares one timestamp):
  // fall back to a magnitude-relative width instead of the old fixed 1.0,
  // which for a cluster sitting far from the epoch mapped the entire set
  // into overflow and re-rebuilt on every insert.
  if (gaps.empty()) return std::max(1.0, min_width);
  std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
  const double width = 2.0 * gaps[gaps.size() / 2];
  return std::isfinite(width) && width > min_width ? width : min_width;
}

void EventQueue::rebuild(double from_time) {
  std::vector<Entry> live;
  live.reserve(live_);
  collect_live(live);
  std::size_t nb = kMinBuckets;
  while (nb < live.size() && nb < kMaxBuckets) nb <<= 1;
  buckets_.assign(nb, {});
  cur_bucket_ = 0;
  bucket_pos_ = 0;
  epoch_ = from_time;
  width_ = pick_width(live);
  for (const Entry& e : live) {
    const double offset = (e.time - epoch_) / width_;
    if (offset >= static_cast<double>(nb)) {
      overflow_.push_back(e);
    } else {
      buckets_[offset > 0.0 ? static_cast<std::size_t>(offset) : 0].push_back(e);
    }
  }
  // The cursor starts inside bucket 0, which must already be sorted (later
  // buckets sort when the cursor arrives).
  std::sort(buckets_[0].begin(), buckets_[0].end(), earlier);
}

bool EventQueue::advance_heap() {
  const auto later = [](const Entry& a, const Entry& b) { return earlier(b, a); };
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
  return !heap_.empty();
}

bool EventQueue::advance() {
  if (backend_ == Backend::BinaryHeap) return advance_heap();
  for (;;) {
    auto& bucket = buckets_[cur_bucket_];
    while (bucket_pos_ < bucket.size()) {
      if (entry_live(bucket[bucket_pos_])) return true;
      ++bucket_pos_;  // cancelled entry: skip for free
    }
    bucket.clear();
    bucket_pos_ = 0;
    ++cur_bucket_;
    if (cur_bucket_ < buckets_.size()) {
      std::sort(buckets_[cur_bucket_].begin(), buckets_[cur_bucket_].end(), earlier);
      continue;
    }
    // Epoch exhausted: everything pending (if anything) sits in overflow.
    if (live_ == 0) {
      overflow_.clear();
      cur_bucket_ = 0;
      epoch_ = now_;
      return false;
    }
    double next = overflow_.front().time;
    for (const Entry& e : overflow_) next = std::min(next, e.time);
    rebuild(std::max(next, now_));
  }
}

EventQueue::Entry EventQueue::choose_tied_entry() {
  tie_scratch_.clear();
  if (backend_ == Backend::BinaryHeap) {
    // The front is the earliest live entry (advance_heap just said so);
    // equal-time siblings can sit anywhere in the heap, so scan for them.
    const double t = heap_.front().time;
    for (const Entry& e : heap_) {
      if (e.time == t && entry_live(e)) tie_scratch_.push_back(e);
    }
    std::sort(tie_scratch_.begin(), tie_scratch_.end(), earlier);
  } else {
    // The current bucket is sorted past the cursor, so the tie group is
    // the contiguous live run sharing the front timestamp. Equal-time
    // entries never hide in later buckets: a bucket behind the cursor is
    // already cleared, and inserts mapping at-or-behind it land in the
    // current bucket.
    const auto& bucket = buckets_[cur_bucket_];
    const double t = bucket[bucket_pos_].time;
    for (std::size_t i = bucket_pos_; i < bucket.size(); ++i) {
      const Entry& e = bucket[i];
      if (e.time != t) break;
      if (entry_live(e)) tie_scratch_.push_back(e);
    }
  }
  std::size_t k = 0;
  if (tie_scratch_.size() > 1) {
    k = hook_->pick_tie(tie_scratch_.front().time, tie_scratch_.size());
    SPICE_ENSURE(k < tie_scratch_.size(), "schedule hook picked outside the tie group");
  }
  return tie_scratch_[k];
}

std::uint64_t EventQueue::fingerprint() const {
  std::vector<double> times;
  times.reserve(live_);
  const auto visit = [&](const Entry& e) {
    if (entry_live(e)) times.push_back(e.time);
  };
  if (backend_ == Backend::BinaryHeap) {
    for (const Entry& e : heap_) visit(e);
  } else {
    for (const auto& bucket : buckets_) {
      for (const Entry& e : bucket) visit(e);
    }
    for (const Entry& e : overflow_) visit(e);
  }
  std::sort(times.begin(), times.end());
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(std::bit_cast<std::uint64_t>(now_));
  mix(times.size());
  for (const double t : times) mix(std::bit_cast<std::uint64_t>(t));
  return h;
}

bool EventQueue::step() {
  if (!advance()) return false;
  Entry e;
  if (hook_ != nullptr) {
    // Tie-aware path: the chosen entry stays in its container; free_slot
    // below bumps its generation, so the container copy dies like a
    // cancelled event when its position is reached.
    e = choose_tied_entry();
  } else if (backend_ == Backend::BinaryHeap) {
    const auto later = [](const Entry& a, const Entry& b) { return earlier(b, a); };
    e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  } else {
    e = buckets_[cur_bucket_][bucket_pos_];
    ++bucket_pos_;
  }
  now_ = e.time;
  ++processed_;
  {
    static obs::Counter& dispatched = obs::metrics().counter("grid.des.events");
    dispatched.add(1);
  }
  // Move the handler out of the slab and release the slot before running,
  // so the dispatch itself never copies the closure and the handler may
  // freely schedule (or cancel) other events.
  Handler handler = std::move(slab_[e.slot].handler);
  free_slot(e.slot);
  handler();
  return true;
}

void EventQueue::run_until(double t_end) {
  while (advance()) {
    const double next = backend_ == Backend::BinaryHeap
                            ? heap_.front().time
                            : buckets_[cur_bucket_][bucket_pos_].time;
    if (next > t_end) break;
    step();
  }
  if (now_ < t_end) now_ = t_end;
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace spice::grid
