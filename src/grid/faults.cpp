#include "grid/faults.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"

namespace spice::grid {

double FaultInjector::draw_exponential(Rng& rng, double mean, const char* tag) const {
  if (config_.oracle == nullptr) return rng.exponential(mean);
  // Enumerable draw: branch over mid-quantile points of Exp(mean). The
  // seeded stream is still advanced so mixing oracle and seeded runs of
  // the same config stays stream-compatible elsewhere.
  rng.exponential(mean);
  SPICE_REQUIRE(config_.oracle_draw_levels >= 1, "need at least one draw level");
  const auto levels = static_cast<std::size_t>(config_.oracle_draw_levels);
  const std::size_t k = config_.oracle->choose(tag, levels);
  const double p = (static_cast<double>(k) + 0.5) / static_cast<double>(levels);
  return -mean * std::log(1.0 - p);
}

FaultInjector::FaultInjector(Federation& federation, FaultConfig config)
    : federation_(federation), config_(std::move(config)) {
  SPICE_REQUIRE(config_.mean_outage_hours > 0.0, "outage duration must be positive");
  SPICE_REQUIRE(config_.site_mtbf_hours >= 0.0, "MTBF must be non-negative");
}

std::size_t FaultInjector::arm() {
  SPICE_REQUIRE(!armed_, "fault injector already armed");
  armed_ = true;

  for (const auto& outage : config_.scheduled) {
    SPICE_REQUIRE(federation_.find(outage.site) != nullptr,
                  "scheduled outage names unknown site: " + outage.site);
    SPICE_REQUIRE(outage.duration_hours > 0.0, "outage duration must be positive");
    outages_.push_back(outage);
  }

  // Random failure/repair process per site, seeded by (seed, site index):
  // the schedule is a pure function of the config, independent of campaign
  // content, dispatch order, or how many events the DES has processed.
  // Eager mode materializes it all; lazy mode keeps one self-rescheduling
  // event per site, drawing from the SAME per-site stream in the SAME
  // order, so both modes inject a bit-identical schedule.
  std::size_t lazy_armed = 0;
  if (config_.site_mtbf_hours > 0.0) {
    const auto& sites = federation_.sites();
    if (config_.lazy_arming) {
      EventQueue& events = federation_.events();
      site_rngs_.reserve(sites.size());
      for (std::size_t i = 0; i < sites.size(); ++i) {
        site_rngs_.push_back(Rng::stream(config_.seed, 0x6661756c74ULL /*"fault"*/, i));
        const double t =
            draw_exponential(site_rngs_.back(), config_.site_mtbf_hours, "fault.gap");
        if (t < config_.horizon_hours) {
          events.at(t, [this, i] { fire_random(i); });
          ++lazy_armed;
        }
      }
    } else {
      for (std::size_t i = 0; i < sites.size(); ++i) {
        Rng rng = Rng::stream(config_.seed, 0x6661756c74ULL /*"fault"*/, i);
        double t = draw_exponential(rng, config_.site_mtbf_hours, "fault.gap");
        while (t < config_.horizon_hours) {
          const double duration =
              draw_exponential(rng, config_.mean_outage_hours, "fault.len");
          outages_.push_back({sites[i]->name(), t, duration});
          t += duration + draw_exponential(rng, config_.site_mtbf_hours, "fault.gap");
        }
      }
    }
  }

  EventQueue& events = federation_.events();
  for (const auto& outage : outages_) {
    Site* site = federation_.find(outage.site);
    const double until = outage.start_hours + outage.duration_hours;
    SPICE_REQUIRE(outage.start_hours >= events.now(), "outage scheduled in the past");
    events.at(outage.start_hours, [site, until] {
      // A longer outage may already hold the site past `until`;
      // fail_until keeps the later end.
      site->fail_until(until);
    });
  }
  return outages_.size() + lazy_armed;
}

void FaultInjector::fire_random(std::size_t site_index) {
  EventQueue& events = federation_.events();
  Rng& rng = site_rngs_[site_index];
  const double duration = draw_exponential(rng, config_.mean_outage_hours, "fault.len");
  // A longer outage may already hold the site; fail_until keeps the
  // later end (same semantics as the eager path).
  federation_.sites()[site_index]->fail_until(events.now() + duration);
  // Parenthesized exactly like the eager path's `t += duration + gap`, so
  // both modes produce bit-identical outage times.
  const double next =
      events.now() +
      (duration + draw_exponential(rng, config_.site_mtbf_hours, "fault.gap"));
  if (next < config_.horizon_hours) {
    events.at(next, [this, site_index] { fire_random(site_index); });
  }
}

void FaultInjector::attach_network(spice::net::Network& network) const {
  for (const auto& window : config_.degradation) {
    network.add_degradation_window({.start_s = window.start_hours * 3600.0,
                                    .end_s = window.end_hours * 3600.0,
                                    .latency_factor = window.latency_factor,
                                    .loss_add = window.loss_add});
  }
}

}  // namespace spice::grid
