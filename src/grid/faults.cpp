#include "grid/faults.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"

namespace spice::grid {

FaultInjector::FaultInjector(Federation& federation, FaultConfig config)
    : federation_(federation), config_(std::move(config)) {
  SPICE_REQUIRE(config_.mean_outage_hours > 0.0, "outage duration must be positive");
  SPICE_REQUIRE(config_.site_mtbf_hours >= 0.0, "MTBF must be non-negative");
}

std::size_t FaultInjector::arm() {
  SPICE_REQUIRE(!armed_, "fault injector already armed");
  armed_ = true;

  for (const auto& outage : config_.scheduled) {
    SPICE_REQUIRE(federation_.find(outage.site) != nullptr,
                  "scheduled outage names unknown site: " + outage.site);
    SPICE_REQUIRE(outage.duration_hours > 0.0, "outage duration must be positive");
    outages_.push_back(outage);
  }

  // Random failure/repair process per site, seeded by (seed, site index):
  // the schedule is a pure function of the config, independent of campaign
  // content, dispatch order, or how many events the DES has processed.
  if (config_.site_mtbf_hours > 0.0) {
    const auto& sites = federation_.sites();
    for (std::size_t i = 0; i < sites.size(); ++i) {
      Rng rng = Rng::stream(config_.seed, 0x6661756c74ULL /*"fault"*/, i);
      double t = rng.exponential(config_.site_mtbf_hours);
      while (t < config_.horizon_hours) {
        const double duration = rng.exponential(config_.mean_outage_hours);
        outages_.push_back({sites[i]->name(), t, duration});
        t += duration + rng.exponential(config_.site_mtbf_hours);
      }
    }
  }

  EventQueue& events = federation_.events();
  for (const auto& outage : outages_) {
    Site* site = federation_.find(outage.site);
    const double until = outage.start_hours + outage.duration_hours;
    SPICE_REQUIRE(outage.start_hours >= events.now(), "outage scheduled in the past");
    events.at(outage.start_hours, [site, until] {
      // A longer outage may already hold the site past `until`;
      // fail_until keeps the later end.
      site->fail_until(until);
    });
  }
  return outages_.size();
}

void FaultInjector::attach_network(spice::net::Network& network) const {
  for (const auto& window : config_.degradation) {
    network.add_degradation_window({.start_s = window.start_hours * 3600.0,
                                    .end_s = window.end_hours * 3600.0,
                                    .latency_factor = window.latency_factor,
                                    .loss_add = window.loss_add});
  }
}

}  // namespace spice::grid
