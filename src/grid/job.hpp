#pragma once
// Batch jobs as the grid substrate sees them.

#include <cstdint>
#include <string>

namespace spice::grid {

using JobId = std::uint64_t;

enum class JobKind {
  Campaign,    ///< one of SPICE's SMD-JE production simulations
  Background,  ///< other users' load on the shared machines
};

enum class JobState { Pending, Queued, Running, Completed, Failed };

struct Job {
  JobId id = 0;
  std::string name;
  JobKind kind = JobKind::Background;
  int processors = 1;
  /// Execution time in hours on a site with speed factor 1.0; the actual
  /// runtime at a site is runtime_hours / site.speed.
  double runtime_hours = 1.0;

  // Filled in by the simulation:
  JobState state = JobState::Pending;
  std::string site;         ///< where it ran (or is queued)
  double submit_time = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;
  int requeues = 0;         ///< times the job was re-dispatched after a failure

  [[nodiscard]] double wait_hours() const { return start_time - submit_time; }
  [[nodiscard]] double cpu_hours(double site_speed) const {
    return processors * runtime_hours / site_speed;
  }
};

}  // namespace spice::grid
