#pragma once
// Batch jobs as the grid substrate sees them.
//
// Job is the *materialized view* of a campaign job: hot scheduler paths
// store job state in flyweight column arrays (grid/job_table.hpp) and
// construct a Job on demand for completion listeners, finished-job
// records and tests. Code that holds a Job holds a snapshot, not live
// scheduler state.

#include <cstdint>
#include <string>

namespace spice::grid {

using JobId = std::uint64_t;

enum class JobKind {
  Campaign,    ///< one of SPICE's SMD-JE production simulations
  Background,  ///< other users' load on the shared machines
};

enum class JobState { Pending, Queued, Running, Completed, Failed };

struct Job {
  JobId id = 0;
  std::string name;
  JobKind kind = JobKind::Background;
  int processors = 1;
  /// Execution time in hours on a site with speed factor 1.0; the actual
  /// runtime at a site is runtime_hours / site.speed.
  double runtime_hours = 1.0;

  /// Simulated periodic checkpoint cadence in site wall-clock hours. When
  /// > 0, a job killed by an outage keeps the work up to its last
  /// checkpoint (completed_fraction advances) and only re-runs the tail.
  double checkpoint_interval_hours = 0.0;

  // Filled in by the simulation:
  JobState state = JobState::Pending;
  std::string site;         ///< where it ran (or is queued)
  double submit_time = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;
  int requeues = 0;         ///< times the job was re-dispatched after a failure
  int holds = 0;            ///< times the broker parked it in the held queue
  /// Checkpoint-credited progress in [0, 1]: the fraction of runtime_hours
  /// already banked by completed checkpoints across earlier attempts.
  double completed_fraction = 0.0;
  double consumed_cpu_hours = 0.0;  ///< procs × wall-hours burned over ALL attempts
  double wasted_cpu_hours = 0.0;    ///< consumed beyond the last credited checkpoint

  /// Reference hours still to run (shrinks as checkpoints are credited).
  [[nodiscard]] double remaining_hours() const {
    return runtime_hours * (1.0 - completed_fraction);
  }
  [[nodiscard]] double wait_hours() const { return start_time - submit_time; }
  [[nodiscard]] double cpu_hours(double site_speed) const {
    return processors * runtime_hours / site_speed;
  }
};

}  // namespace spice::grid
