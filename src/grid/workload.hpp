#pragma once
// Synthetic background workload: the "other users" that make shared HPC
// machines scarce. The paper's time-to-solution argument (§III: 72 jobs in
// under a week "unlikely ... without a grid infrastructure") only holds on
// *contended* machines, so the batch-campaign experiment loads every site
// with a Poisson stream of jobs sized like a 2005 supercomputing mix.

#include <cstdint>

#include "grid/des.hpp"
#include "grid/site.hpp"

namespace spice::grid {

struct WorkloadParams {
  double target_utilization = 0.7;  ///< fraction of site capacity consumed
  double mean_runtime_hours = 8.0;  ///< lognormal-ish job length
  double horizon_hours = 400.0;     ///< generate arrivals in [0, horizon)
  std::uint64_t seed = 42;
};

/// Pre-schedule background-job submissions for `site` on its event queue.
/// Job sizes are powers of two between 8 and site.processors/2; the
/// arrival rate is chosen so offered load ≈ target_utilization of the
/// machine. Returns the number of arrivals generated.
std::size_t generate_background_load(Site& site, EventQueue& events,
                                     const WorkloadParams& params);

}  // namespace spice::grid
