#pragma once
// A grid site: an HPC machine with a batch queue, advance reservations and
// failure behaviour, driven by the shared EventQueue.
//
// Scheduling policy is FCFS with conservative EASY backfill: the head job
// gets a "shadow" start time computed from running-job completions; later
// queue entries may start immediately only if they fit in the currently
// free processors AND are guaranteed to finish before the shadow time, so
// backfilling never delays the head job.
//
// Jobs live as JobTable rows; the queue and running set hold row indices.
// Finish events are cancellable: an outage cancels the pending finish of
// every killed job outright (no stale fired-and-ignored events), and the
// legacy run-token machinery is gone. The Job-struct entry points
// (submit(Job), CompletionHandler) remain for callers that predate the
// table and for tests.

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "grid/des.hpp"
#include "grid/job.hpp"
#include "grid/job_table.hpp"

namespace spice::grid {

struct SiteSpec {
  std::string name;
  std::string grid;        ///< "TeraGrid", "NGS", ...
  int processors = 128;
  double speed = 1.0;      ///< relative per-processor speed factor
  bool hidden_ip = false;  ///< compute nodes not externally addressable
  bool lightpath = false;  ///< optical lightpath (GLIF/UKLight) deployed
  /// Application successfully grid-enabled here (middleware deployed and
  /// working). HPCx never got there in the paper (§V-C.2), so the broker
  /// skips such sites.
  bool grid_enabled = true;
};

struct Reservation {
  double start = 0.0;  ///< hours
  double end = 0.0;
  int processors = 0;
  std::string holder;
};

class Site {
 public:
  using CompletionHandler = std::function<void(const Job&)>;
  /// Flyweight completion path: receives the row while it still holds the
  /// terminal state. A handler that re-queues the job must move the row
  /// out of Completed/Failed (e.g. to Backoff) to keep it alive; rows
  /// left terminal are released when the handler returns.
  using RowCompletionHandler = std::function<void(JobRow)>;
  using RecoveryHandler = std::function<void()>;

  /// Standalone site owning its own JobTable (tests, single-site demos).
  Site(SiteSpec spec, EventQueue& events);
  /// Federation member sharing the federation's JobTable.
  Site(SiteSpec spec, EventQueue& events, JobTable& table);

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  [[nodiscard]] const SiteSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] JobTable& jobs() { return *table_; }
  [[nodiscard]] SiteId site_id() const { return id_; }

  /// Called whenever a job reaches Completed or Failed.
  void set_completion_handler(CompletionHandler handler) { on_done_ = std::move(handler); }
  void set_row_completion_handler(RowCompletionHandler handler) {
    on_done_row_ = std::move(handler);
  }

  /// Called when an outage lifts and the site is usable again (fires once
  /// per outage end, suppressed while a longer overlapping outage holds).
  void set_recovery_handler(RecoveryHandler handler) { on_recovered_ = std::move(handler); }

  /// Emit per-job trace spans only for jobs with id % n == 0 (outage spans
  /// are always emitted). 1 = trace every job; large n keeps tracing
  /// affordable on million-job campaigns.
  void set_trace_sampling(std::uint32_t n) { trace_sample_ = n == 0 ? 1 : n; }

  /// Enqueue a job (state → Queued) and try to dispatch.
  void submit(Job job);
  /// Enqueue an existing table row (broker fast path).
  void submit_row(JobRow row);

  /// Reserve processors for [start, end); queued batch jobs will not be
  /// started into the reserved capacity.
  void add_reservation(const Reservation& r);

  /// Take the whole site down until `until` (hours): running jobs fail,
  /// queued jobs fail, new submissions are rejected (job fails instantly).
  void fail_until(double until);

  [[nodiscard]] bool in_outage() const;
  [[nodiscard]] int free_processors() const { return free_procs_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::size_t running_count() const { return running_.size(); }
  /// Busy processor-hours accumulated by finished jobs.
  [[nodiscard]] double busy_proc_hours() const { return busy_proc_hours_; }
  /// Estimated hours of queued work per processor (broker load signal).
  /// O(1): both queued and running work are tracked incrementally, so a
  /// LeastBacklog scan over a 1000-site federation costs O(sites) flat.
  [[nodiscard]] double backlog_hours() const;
  [[nodiscard]] const std::vector<Reservation>& reservations() const { return reservations_; }

  /// Deterministic digest of the scheduler-visible site state (free
  /// processors, outage window, queue order, running set, accumulators)
  /// for grid/mc's stateful-hash pruning.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// MUTATION SWITCH (grid/mc sensitivity demo only): re-introduce the
  /// pre-PR-2 stale-finish-event bug. An outage stops cancelling the
  /// finish events of the jobs it kills, and finish_row falls back to the
  /// old state-based guard — which cannot tell a stale finish from a live
  /// one once the SAME row is re-dispatched to this site. The explorer
  /// must find the interleaving where that completes a re-run attempt at
  /// zero wall-clock; seeded sweeps miss it (tie order is seq-determined,
  /// so no seed changes it).
  void set_inject_stale_finish_bug(bool on) { inject_stale_finish_bug_ = on; }

 private:
  struct Running {
    JobRow row;
    double end_time;
  };

  /// Max processors held by reservations at any instant in [t0, t1).
  [[nodiscard]] int max_reserved_overlap(double t0, double t1) const;
  /// Can a job with `procs`/`duration` start right now?
  [[nodiscard]] bool fits_now(int procs, double duration) const;
  /// Earliest time the queue head could start, given current running jobs
  /// and reservations (the EASY "shadow time").
  [[nodiscard]] double shadow_time(JobRow head) const;
  /// Per-row reference work (procs × remaining / speed) for the backlog.
  [[nodiscard]] double queued_work_of(JobRow row) const;
  void start_row(JobRow row);
  void finish_row(JobRow row);
  void dispatch();
  void fail_row(JobRow row, const char* reason);
  /// Fan completion out to handlers, then release the row unless a
  /// handler claimed it by moving it out of its terminal state.
  void complete_row(JobRow row);
  [[nodiscard]] bool traced(JobRow row) const;
  /// This site's track on the event queue's virtual-clock tracer (lazily
  /// allocated and named after the site); 0 when no tracer is attached.
  [[nodiscard]] std::uint32_t trace_track();

  SiteSpec spec_;
  EventQueue& events_;
  std::unique_ptr<JobTable> owned_table_;  ///< standalone-constructor storage
  JobTable* table_;
  SiteId id_;
  CompletionHandler on_done_;
  RowCompletionHandler on_done_row_;
  RecoveryHandler on_recovered_;
  int free_procs_;
  std::deque<JobRow> queue_;
  std::vector<Running> running_;
  std::vector<Reservation> reservations_;
  double outage_until_ = -1.0;
  bool inject_stale_finish_bug_ = false;
  double busy_proc_hours_ = 0.0;
  double queued_work_ = 0.0;  ///< Σ queued_work_of(row) over queue_
  /// Running-work accumulators for the O(1) backlog: Σ procs × end_time
  /// and Σ procs over running_. Σ procs × (end − now) falls out as
  /// running_end_work_ − now × running_procs_; both reset to exactly zero
  /// whenever running_ empties, so FP drift cannot accumulate across the
  /// campaign.
  double running_end_work_ = 0.0;
  int running_procs_ = 0;
  std::uint32_t trace_sample_ = 1;
  std::uint32_t trace_track_ = 0;
};

}  // namespace spice::grid
