#pragma once
// A grid site: an HPC machine with a batch queue, advance reservations and
// failure behaviour, driven by the shared EventQueue.
//
// Scheduling policy is FCFS with conservative EASY backfill: the head job
// gets a "shadow" start time computed from running-job completions; later
// queue entries may start immediately only if they fit in the currently
// free processors AND are guaranteed to finish before the shadow time, so
// backfilling never delays the head job.

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "grid/des.hpp"
#include "grid/job.hpp"

namespace spice::grid {

struct SiteSpec {
  std::string name;
  std::string grid;        ///< "TeraGrid", "NGS", ...
  int processors = 128;
  double speed = 1.0;      ///< relative per-processor speed factor
  bool hidden_ip = false;  ///< compute nodes not externally addressable
  bool lightpath = false;  ///< optical lightpath (GLIF/UKLight) deployed
  /// Application successfully grid-enabled here (middleware deployed and
  /// working). HPCx never got there in the paper (§V-C.2), so the broker
  /// skips such sites.
  bool grid_enabled = true;
};

struct Reservation {
  double start = 0.0;  ///< hours
  double end = 0.0;
  int processors = 0;
  std::string holder;
};

class Site {
 public:
  using CompletionHandler = std::function<void(const Job&)>;

  Site(SiteSpec spec, EventQueue& events);

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  [[nodiscard]] const SiteSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }

  using RecoveryHandler = std::function<void()>;

  /// Called whenever a job reaches Completed or Failed.
  void set_completion_handler(CompletionHandler handler) { on_done_ = std::move(handler); }

  /// Called when an outage lifts and the site is usable again (fires once
  /// per outage end, suppressed while a longer overlapping outage holds).
  void set_recovery_handler(RecoveryHandler handler) { on_recovered_ = std::move(handler); }

  /// Enqueue a job (state → Queued) and try to dispatch.
  void submit(Job job);

  /// Reserve processors for [start, end); queued batch jobs will not be
  /// started into the reserved capacity.
  void add_reservation(const Reservation& r);

  /// Take the whole site down until `until` (hours): running jobs fail,
  /// queued jobs fail, new submissions are rejected (job fails instantly).
  void fail_until(double until);

  [[nodiscard]] bool in_outage() const;
  [[nodiscard]] int free_processors() const { return free_procs_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::size_t running_count() const { return running_.size(); }
  /// Busy processor-hours accumulated by finished jobs.
  [[nodiscard]] double busy_proc_hours() const { return busy_proc_hours_; }
  /// Estimated hours of queued work per processor (broker load signal).
  [[nodiscard]] double backlog_hours() const;
  [[nodiscard]] const std::vector<Reservation>& reservations() const { return reservations_; }

 private:
  struct Running {
    Job job;
    double end_time;
    /// Distinguishes attempts: a job killed by an outage and later
    /// re-submitted here must not be completed by the first attempt's
    /// still-pending finish event.
    std::uint64_t run_token;
    bool alive = true;
  };

  /// Max processors held by reservations at any instant in [t0, t1).
  [[nodiscard]] int max_reserved_overlap(double t0, double t1) const;
  /// Can a job with `procs`/`duration` start right now?
  [[nodiscard]] bool fits_now(int procs, double duration) const;
  /// Earliest time the queue head could start, given current running jobs
  /// and reservations (the EASY "shadow time").
  [[nodiscard]] double shadow_time(const Job& head) const;
  void start_job(Job job);
  void finish_job(std::uint64_t run_token);
  void dispatch();
  void fail_job(Job job, const char* reason);
  /// This site's track on the event queue's virtual-clock tracer (lazily
  /// allocated and named after the site); 0 when no tracer is attached.
  [[nodiscard]] std::uint32_t trace_track();

  SiteSpec spec_;
  EventQueue& events_;
  CompletionHandler on_done_;
  RecoveryHandler on_recovered_;
  int free_procs_;
  std::deque<Job> queue_;
  std::vector<Running> running_;
  std::vector<Reservation> reservations_;
  double outage_until_ = -1.0;
  double busy_proc_hours_ = 0.0;
  std::uint64_t next_run_token_ = 0;
  std::uint32_t trace_track_ = 0;
};

}  // namespace spice::grid
