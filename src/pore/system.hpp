#pragma once
// Assembly of the full translocation system: ssDNA chain + implicit
// hemolysin pore + solvent (implicit, via the Langevin thermostat and
// Debye–Hückel screening) — the reproduction's equivalent of the paper's
// 300,000-atom NAMD system.

#include <cstdint>
#include <memory>
#include <vector>

#include "md/engine.hpp"
#include "pore/dna.hpp"
#include "pore/pore_potential.hpp"

namespace spice::pore {

struct TranslocationConfig {
  DnaParams dna;
  PoreParams pore;
  spice::md::NonbondedParams nonbonded;
  spice::md::MdConfig md;
  /// Initial z of the head bead. The default starts the strand threaded
  /// through the constriction with its head in the barrel, matching the
  /// paper's setup where the PMF is measured for a 10 Å sub-trajectory
  /// near the centre of the pore.
  double head_z = -10.0;
  /// Equilibration steps run by build_translocation_system before the
  /// engine is returned (0 = caller equilibrates).
  std::size_t equilibration_steps = 0;
};

/// A ready-to-run translocation system.
struct TranslocationSystem {
  spice::md::Engine engine;
  std::shared_ptr<PorePotential> pore;
  std::vector<std::uint32_t> dna_selection;
  TranslocationConfig config;
};

/// Build engine + pore + chain, initialize velocities at the configured
/// temperature, and (optionally) equilibrate.
[[nodiscard]] TranslocationSystem build_translocation_system(const TranslocationConfig& config);

}  // namespace spice::pore
