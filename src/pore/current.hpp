#pragma once
// Ionic-current model and translocation-event detection.
//
// The experiments motivating the paper (§I refs: Meller et al.,
// Sauer-Budge et al.) drive DNA through alpha-hemolysin with a
// transmembrane voltage and read the translocation off the ionic-current
// blockade: the strand occludes the lumen and the open-pore current drops
// until the molecule passes. This module gives the simulated system the
// same observable:
//
//   * access-resistance model — the pore is a stack of thin conducting
//     slices; slice conductance ∝ open cross-section A(z) = π R(z)² minus
//     the area occluded by any beads in the slice; total conductance from
//     the series sum; I = G·V;
//   * a threshold event detector that turns a current trace into
//     (dwell time, blockade depth) events, the quantities the experiments
//     histogram.

#include <cstddef>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "pore/profile.hpp"

namespace spice::pore {

struct CurrentModelParams {
  double conductivity = 1.0;     ///< bulk solution conductivity, arbitrary-but-fixed units
  double z_lo = -50.0;           ///< integrate the access resistance over [z_lo, z_hi]
  double z_hi = 0.0;
  std::size_t slices = 50;
  double voltage_mv = 120.0;
  /// Minimum open fraction per slice (a fully plugged slice still leaks a
  /// little in experiment; also keeps the series sum finite).
  double min_open_fraction = 0.05;
};

/// Pore conductance for the given bead configuration (arbitrary units,
/// proportional to siemens for a fixed conductivity scale).
[[nodiscard]] double pore_conductance(const RadiusProfile& profile,
                                      std::span<const Vec3> positions, double bead_radius,
                                      const CurrentModelParams& params);

/// Ionic current I = G·V (same arbitrary units × mV).
[[nodiscard]] double ionic_current(const RadiusProfile& profile,
                                   std::span<const Vec3> positions, double bead_radius,
                                   const CurrentModelParams& params);

/// Open-pore (no DNA) current — the experimental baseline.
[[nodiscard]] double open_pore_current(const RadiusProfile& profile,
                                       const CurrentModelParams& params);

/// One detected blockade event.
struct BlockadeEvent {
  std::size_t start_index = 0;   ///< first sample below threshold
  std::size_t end_index = 0;     ///< one past the last blocked sample
  double dwell_samples = 0.0;    ///< end − start
  double mean_blockade = 0.0;    ///< mean I/I_open during the event
  double min_blockade = 0.0;     ///< deepest I/I_open during the event
};

/// Detect blockade events in a current trace: an event is a maximal run of
/// samples with I/I_open below `threshold` lasting at least `min_samples`.
[[nodiscard]] std::vector<BlockadeEvent> detect_blockade_events(
    std::span<const double> current_trace, double open_current, double threshold = 0.8,
    std::size_t min_samples = 3);

}  // namespace spice::pore
