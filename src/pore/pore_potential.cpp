#include "pore/pore_potential.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/units.hpp"

namespace spice::pore {

PorePotential::PorePotential(RadiusProfile profile, PoreParams params)
    : profile_(std::move(profile)), params_(params) {
  SPICE_REQUIRE(params_.wall_stiffness > 0.0, "wall stiffness must be positive");
  SPICE_REQUIRE(params_.membrane_hi > params_.membrane_lo, "membrane slab must have hi > lo");
  SPICE_REQUIRE(params_.affinity_width > 0.0, "affinity width must be positive");
}

double PorePotential::field_fraction(double z, double& dfdz) const {
  // Smoothstep from 0 (at/below membrane_lo) to 1 (at/above membrane_hi).
  const double lo = params_.membrane_lo;
  const double hi = params_.membrane_hi;
  if (z <= lo) {
    dfdz = 0.0;
    return 0.0;
  }
  if (z >= hi) {
    dfdz = 0.0;
    return 1.0;
  }
  const double t = (z - lo) / (hi - lo);
  dfdz = (6.0 * t - 6.0 * t * t) / (hi - lo);
  return t * t * (3.0 - 2.0 * t);
}

double PorePotential::barrel_envelope(double z, double& dmdz) const {
  const double lo = params_.membrane_lo;
  const double hi = params_.membrane_hi;
  const double w = params_.site_edge_width;
  dmdz = 0.0;
  if (z <= lo || z >= hi) return 0.0;
  auto smooth = [](double t, double& dt) {
    if (t <= 0.0) {
      dt = 0.0;
      return 0.0;
    }
    if (t >= 1.0) {
      dt = 0.0;
      return 1.0;
    }
    dt = 6.0 * t - 6.0 * t * t;
    return t * t * (3.0 - 2.0 * t);
  };
  double d_up = 0.0;
  double d_down = 0.0;
  const double up = smooth((z - lo) / w, d_up);
  const double down = smooth((hi - z) / w, d_down);
  dmdz = (d_up / w) * down - up * (d_down / w);
  return up * down;
}

double PorePotential::particle_energy_force(const Vec3& r, double charge, Vec3& f) const {
  double energy = 0.0;
  f = Vec3{};

  // 1. Confinement wall.
  const double rho2 = r.x * r.x + r.y * r.y;
  const double radius = profile_.radius(r.z);
  if (rho2 > radius * radius) {
    const double rho = std::sqrt(rho2);
    const double over = rho - radius;
    const double k = params_.wall_stiffness;
    energy += k * over * over;
    const double f_rho = -2.0 * k * over;       // radial force (inward)
    f.x += f_rho * r.x / rho;
    f.y += f_rho * r.y / rho;
    f.z += 2.0 * k * over * profile_.radius_derivative(r.z);
  }

  // 2. Transmembrane field: electric potential φ(z) = V·(1 − s(z)) with
  // s: 0 at the trans side, 1 at the cis side. U = q·φ.
  if (charge != 0.0 && params_.voltage_mv != 0.0) {
    double dsdz = 0.0;
    const double s = field_fraction(r.z, dsdz);
    const double v_kcal = units::voltage_mv_to_kcal_per_e(params_.voltage_mv);
    energy += charge * v_kcal * (1.0 - s);
    f.z -= charge * v_kcal * (-dsdz);  // F = −dU/dz = q·V·ds/dz
  }

  // 3. Barrel affinity well.
  if (params_.affinity != 0.0) {
    const double w = params_.affinity_width;
    const double dz = r.z - params_.affinity_center;
    const double gauss = std::exp(-0.5 * dz * dz / (w * w));
    energy += -params_.affinity * gauss;
    f.z += -params_.affinity * gauss * dz / (w * w);  // F = −dU/dz
  }

  // 4. Binding-site corrugation: U = −A cos(2π(z − z_lo)/P) · m(z).
  if (params_.site_amplitude != 0.0) {
    const double k = 2.0 * std::numbers::pi / params_.site_period;
    const double phase = k * (r.z - params_.membrane_lo);
    double dmdz = 0.0;
    const double m = barrel_envelope(r.z, dmdz);
    if (m > 0.0 || dmdz != 0.0) {
      const double a = params_.site_amplitude;
      energy += -a * std::cos(phase) * m;
      // dU/dz = a k sin(phase) m − a cos(phase) dm/dz ; F = −dU/dz.
      f.z += -(a * k * std::sin(phase) * m - a * std::cos(phase) * dmdz);
    }
  }

  return energy;
}

std::shared_ptr<PorePotential> make_hemolysin_pore(PoreParams params) {
  return std::make_shared<PorePotential>(hemolysin_profile(), params);
}

}  // namespace spice::pore
