#pragma once
// Coarse-grained single-stranded DNA builder.
//
// One bead per nucleotide (the resolution at which the paper's observables
// — COM displacement along the pore axis, strand stretching — live):
// mass ≈ 330 g/mol, charge −1 e (one phosphate), WCA radius ≈ 3 Å,
// harmonic backbone bonds at the ~6.5 Å inter-phosphate spacing of ssDNA,
// and a weak angle term for the short persistence length of single strands.

#include <cstdint>
#include <vector>

#include "common/vec3.hpp"
#include "md/topology.hpp"

namespace spice::pore {

struct DnaParams {
  std::size_t nucleotides = 12;
  double bead_mass = 330.0;       ///< g/mol
  double bead_charge = -1.0;      ///< e
  double bead_radius = 3.0;       ///< Å (WCA radius; pair sigma = 6 Å)
  double bond_length = 6.5;       ///< Å
  double bond_stiffness = 20.0;   ///< kcal/mol/Å² (U = k (r−r0)²)
  double angle_stiffness = 2.0;   ///< kcal/mol/rad² (ssDNA is flexible)
};

/// A built chain: topology plus a straight initial conformation threaded
/// through the pore the way the paper's Fig. 1 snapshot shows: the head
/// (first) bead is the LOWEST, at z = head_z inside the barrel, and the
/// rest of the strand extends upward (+z) through the constriction into
/// the cis vestibule. Pulling the head down (−z) therefore drags the
/// strand through the constriction — the Fig. 3 scenario.
struct DnaChain {
  spice::md::Topology topology;
  std::vector<spice::Vec3> positions;
  std::vector<std::uint32_t> selection;  ///< all bead indices, head first
  DnaParams params;
};

/// Build an ssDNA chain of `params.nucleotides` beads. The chain is laid
/// out along the pore axis (x = y = 0) with the head (first) bead at
/// z = head_z and subsequent beads ABOVE it at the bond rest length.
[[nodiscard]] DnaChain build_ssdna(const DnaParams& params, double head_z);

}  // namespace spice::pore
