#include "pore/current.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace spice::pore {

namespace {
/// Cross-sectional area a sphere of radius r centred at (x, y, zb)
/// occludes in the slice at height z (disc of the sphere at that height,
/// clipped to non-negative).
double sphere_slice_area(const Vec3& bead, double r, double z) {
  const double dz = z - bead.z;
  const double disc2 = r * r - dz * dz;
  return disc2 > 0.0 ? std::numbers::pi * disc2 : 0.0;
}
}  // namespace

double pore_conductance(const RadiusProfile& profile, std::span<const Vec3> positions,
                        double bead_radius, const CurrentModelParams& params) {
  SPICE_REQUIRE(params.z_hi > params.z_lo, "current model needs z_hi > z_lo");
  SPICE_REQUIRE(params.slices >= 2, "current model needs at least two slices");
  SPICE_REQUIRE(params.conductivity > 0.0, "conductivity must be positive");
  SPICE_REQUIRE(params.min_open_fraction > 0.0 && params.min_open_fraction <= 1.0,
                "min_open_fraction must be in (0, 1]");

  const double dz = (params.z_hi - params.z_lo) / static_cast<double>(params.slices);
  double resistance = 0.0;
  for (std::size_t s = 0; s < params.slices; ++s) {
    const double z = params.z_lo + (static_cast<double>(s) + 0.5) * dz;
    const double lumen_radius = profile.radius(z);
    const double lumen_area = std::numbers::pi * lumen_radius * lumen_radius;
    double occluded = 0.0;
    for (const auto& bead : positions) {
      // Only beads actually inside the lumen occlude it.
      const double rho2 = bead.x * bead.x + bead.y * bead.y;
      if (rho2 > lumen_radius * lumen_radius) continue;
      occluded += sphere_slice_area(bead, bead_radius, z);
    }
    const double open_area =
        std::max(lumen_area - occluded, params.min_open_fraction * lumen_area);
    resistance += dz / (params.conductivity * open_area);
  }
  return 1.0 / resistance;
}

double ionic_current(const RadiusProfile& profile, std::span<const Vec3> positions,
                     double bead_radius, const CurrentModelParams& params) {
  return pore_conductance(profile, positions, bead_radius, params) * params.voltage_mv;
}

double open_pore_current(const RadiusProfile& profile, const CurrentModelParams& params) {
  return ionic_current(profile, {}, 0.0, params);
}

std::vector<BlockadeEvent> detect_blockade_events(std::span<const double> current_trace,
                                                  double open_current, double threshold,
                                                  std::size_t min_samples) {
  SPICE_REQUIRE(open_current > 0.0, "open current must be positive");
  SPICE_REQUIRE(threshold > 0.0 && threshold < 1.0, "threshold must be in (0, 1)");
  SPICE_REQUIRE(min_samples >= 1, "min_samples must be at least 1");

  std::vector<BlockadeEvent> events;
  std::size_t start = 0;
  bool in_event = false;
  double sum = 0.0;
  double deepest = 1.0;

  auto close_event = [&](std::size_t end) {
    if (end - start >= min_samples) {
      BlockadeEvent e;
      e.start_index = start;
      e.end_index = end;
      e.dwell_samples = static_cast<double>(end - start);
      e.mean_blockade = sum / static_cast<double>(end - start);
      e.min_blockade = deepest;
      events.push_back(e);
    }
  };

  for (std::size_t i = 0; i < current_trace.size(); ++i) {
    const double fraction = current_trace[i] / open_current;
    if (fraction < threshold) {
      if (!in_event) {
        in_event = true;
        start = i;
        sum = 0.0;
        deepest = 1.0;
      }
      sum += fraction;
      deepest = std::min(deepest, fraction);
    } else if (in_event) {
      in_event = false;
      close_event(i);
    }
  }
  if (in_event) close_event(current_trace.size());
  return events;
}

}  // namespace spice::pore
