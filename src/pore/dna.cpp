#include "pore/dna.hpp"

#include <numbers>
#include <string>

#include "common/error.hpp"

namespace spice::pore {

DnaChain build_ssdna(const DnaParams& params, double head_z) {
  SPICE_REQUIRE(params.nucleotides >= 2, "an ssDNA chain needs at least two beads");
  SPICE_REQUIRE(params.bond_length > 0.0, "bond length must be positive");

  DnaChain chain;
  chain.params = params;
  for (std::size_t n = 0; n < params.nucleotides; ++n) {
    spice::md::Particle bead;
    bead.mass = params.bead_mass;
    bead.charge = params.bead_charge;
    bead.radius = params.bead_radius;
    bead.name = "NT" + std::to_string(n);
    const auto index = chain.topology.add_particle(bead);
    chain.selection.push_back(index);
    chain.positions.push_back({0.0, 0.0, head_z + static_cast<double>(n) * params.bond_length});
  }
  for (std::size_t n = 0; n + 1 < params.nucleotides; ++n) {
    chain.topology.add_bond({chain.selection[n], chain.selection[n + 1],
                             params.bond_stiffness, params.bond_length});
  }
  for (std::size_t n = 0; n + 2 < params.nucleotides; ++n) {
    chain.topology.add_angle({chain.selection[n], chain.selection[n + 1],
                              chain.selection[n + 2], params.angle_stiffness,
                              std::numbers::pi});
  }
  return chain;
}

}  // namespace spice::pore
