#include "pore/system.hpp"

namespace spice::pore {

TranslocationSystem build_translocation_system(const TranslocationConfig& config) {
  DnaChain chain = build_ssdna(config.dna, config.head_z);
  auto pore = make_hemolysin_pore(config.pore);

  spice::md::Engine engine(std::move(chain.topology), config.nonbonded, config.md);
  engine.set_positions(chain.positions);
  engine.add_contribution(pore);
  engine.initialize_velocities(config.md.temperature);
  if (config.equilibration_steps > 0) engine.step(config.equilibration_steps);

  return TranslocationSystem{std::move(engine), std::move(pore), std::move(chain.selection),
                             config};
}

}  // namespace spice::pore
