#pragma once
// Implicit pore + membrane + transmembrane-field potential.
//
// This replaces the paper's explicit alpha-hemolysin/lipid-bilayer system
// (DESIGN.md §2). Three per-particle terms:
//
//  1. Confinement wall: U = k_wall · max(0, ρ − R(z))², where ρ is the
//     distance from the pore axis and R(z) the lumen radius profile. In
//     bulk the profile is wide (a loose container); inside the membrane
//     the narrow profile makes crossing anywhere but the lumen
//     energetically impossible — exactly the role of the bilayer.
//  2. Transmembrane field: charged particles gain q·V as they cross the
//     slab; the potential ramps smoothly across [slab_lo, slab_hi]. This
//     is the electrophoretic driving force of the nanopore experiments.
//  3. Pore–DNA affinity: a smooth attractive well of depth `affinity`
//     inside the barrel, standing in for the DNA–wall interactions that
//     shape the PMF fine structure.

#include <memory>

#include "md/force_contribution.hpp"
#include "pore/profile.hpp"

namespace spice::pore {

struct PoreParams {
  double wall_stiffness = 5.0;   ///< kcal/mol/Å² (k_wall)
  double membrane_lo = -50.0;    ///< slab lower z, Å
  double membrane_hi = 0.0;      ///< slab upper z, Å
  double voltage_mv = 120.0;     ///< transmembrane potential, mV (trans positive)
  double affinity = 3.0;         ///< barrel attraction depth per bead, kcal/mol
  double affinity_center = -25.0;  ///< z of the attraction well centre, Å
  double affinity_width = 20.0;  ///< gaussian width of the well, Å
  /// Binding-site corrugation inside the barrel: nucleotides interact with
  /// the pore-lining residues at a roughly regular axial spacing; the PMF
  /// fine structure this creates is what the Fig. 4 parameter study probes
  /// (weak springs smear it, fast pulls over-run it).
  double site_amplitude = 1.5;   ///< kcal/mol per bead
  double site_period = 6.5;      ///< Å (≈ inter-nucleotide spacing)
  double site_edge_width = 4.0;  ///< envelope roll-off at the slab edges, Å
};

/// Per-particle pore potential; register with Engine::add_contribution.
class PorePotential final : public spice::md::PerParticlePotential {
 public:
  PorePotential(RadiusProfile profile, PoreParams params);

  [[nodiscard]] std::string name() const override { return "pore"; }
  [[nodiscard]] const RadiusProfile& profile() const { return profile_; }
  [[nodiscard]] const PoreParams& params() const { return params_; }

  /// Energy/force for a single site (exposed for tests and the PMF
  /// reference calculation).
  [[nodiscard]] double particle_energy_force(const spice::Vec3& r, double charge,
                                             spice::Vec3& f) const override;

 private:
  [[nodiscard]] double field_fraction(double z, double& dfdz) const;
  /// Smooth 0→1→0 envelope confining the binding-site term to the barrel.
  [[nodiscard]] double barrel_envelope(double z, double& dmdz) const;

  RadiusProfile profile_;
  PoreParams params_;
};

/// Convenience: hemolysin profile + default parameters.
[[nodiscard]] std::shared_ptr<PorePotential> make_hemolysin_pore(PoreParams params = {});

}  // namespace spice::pore
