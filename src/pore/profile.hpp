#pragma once
// Axisymmetric pore radius profile R(z).
//
// The alpha-hemolysin channel (paper Fig. 1) is approximated by its
// accessible-lumen radius along the pore axis: a wide cis vestibule
// (~22 Å), a ~7 Å constriction at the vestibule–barrel junction, and a
// ~10 Å beta-barrel spanning the membrane. The profile is a C¹ Catmull-Rom
// interpolation of control points so wall forces are continuous.

#include <vector>

namespace spice::pore {

struct ProfilePoint {
  double z = 0.0;       ///< axial coordinate, Å
  double radius = 0.0;  ///< lumen radius at z, Å
};

/// C¹ radius profile from control points (strictly increasing z).
/// Outside the control range the profile is clamped to the end radii.
class RadiusProfile {
 public:
  explicit RadiusProfile(std::vector<ProfilePoint> points);

  /// Lumen radius at axial position z, Å.
  [[nodiscard]] double radius(double z) const;
  /// dR/dz at z (continuous; zero outside the control range).
  [[nodiscard]] double radius_derivative(double z) const;

  [[nodiscard]] double z_min() const { return points_.front().z; }
  [[nodiscard]] double z_max() const { return points_.back().z; }
  [[nodiscard]] const std::vector<ProfilePoint>& control_points() const { return points_; }

  /// The narrowest point of the profile: sampled argmin of R(z).
  [[nodiscard]] ProfilePoint constriction() const;

 private:
  struct Segment {
    double z0, z1;    // segment range
    double r0, r1;    // radii at ends
    double m0, m1;    // tangents dR/dz at ends
  };
  [[nodiscard]] const Segment& segment_for(double z) const;

  std::vector<ProfilePoint> points_;
  std::vector<Segment> segments_;
};

/// The default alpha-hemolysin-like profile used throughout the
/// reproduction: cis mouth at z ≈ +40, constriction (R ≈ 7 Å) at z = 0,
/// beta-barrel (R ≈ 10 Å) down to z ≈ −50, trans exit below.
[[nodiscard]] RadiusProfile hemolysin_profile();

}  // namespace spice::pore
