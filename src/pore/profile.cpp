#include "pore/profile.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace spice::pore {

RadiusProfile::RadiusProfile(std::vector<ProfilePoint> points) : points_(std::move(points)) {
  SPICE_REQUIRE(points_.size() >= 2, "radius profile needs at least two control points");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    SPICE_REQUIRE(points_[i].z > points_[i - 1].z, "control points must have increasing z");
    SPICE_REQUIRE(points_[i].radius > 0.0, "radii must be positive");
  }
  SPICE_REQUIRE(points_.front().radius > 0.0, "radii must be positive");

  // Catmull-Rom tangents with clamped (zero-slope) ends.
  const std::size_t n = points_.size();
  std::vector<double> tangents(n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    tangents[i] =
        (points_[i + 1].radius - points_[i - 1].radius) / (points_[i + 1].z - points_[i - 1].z);
  }
  segments_.reserve(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    segments_.push_back(Segment{points_[i].z, points_[i + 1].z, points_[i].radius,
                                points_[i + 1].radius, tangents[i], tangents[i + 1]});
  }
}

const RadiusProfile::Segment& RadiusProfile::segment_for(double z) const {
  // Binary search for the segment containing z (clamped to range).
  auto it = std::upper_bound(segments_.begin(), segments_.end(), z,
                             [](double value, const Segment& s) { return value < s.z1; });
  if (it == segments_.end()) --it;
  return *it;
}

double RadiusProfile::radius(double z) const {
  if (z <= points_.front().z) return points_.front().radius;
  if (z >= points_.back().z) return points_.back().radius;
  const Segment& s = segment_for(z);
  const double h = s.z1 - s.z0;
  const double t = (z - s.z0) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  // Cubic Hermite basis.
  return (2 * t3 - 3 * t2 + 1) * s.r0 + (t3 - 2 * t2 + t) * h * s.m0 +
         (-2 * t3 + 3 * t2) * s.r1 + (t3 - t2) * h * s.m1;
}

double RadiusProfile::radius_derivative(double z) const {
  if (z <= points_.front().z || z >= points_.back().z) return 0.0;
  const Segment& s = segment_for(z);
  const double h = s.z1 - s.z0;
  const double t = (z - s.z0) / h;
  const double t2 = t * t;
  const double dt = 1.0 / h;
  return ((6 * t2 - 6 * t) * s.r0 + (3 * t2 - 4 * t + 1) * h * s.m0 +
          (-6 * t2 + 6 * t) * s.r1 + (3 * t2 - 2 * t) * h * s.m1) *
         dt;
}

ProfilePoint RadiusProfile::constriction() const {
  ProfilePoint best{points_.front().z, radius(points_.front().z)};
  const double z0 = points_.front().z;
  const double z1 = points_.back().z;
  constexpr int kSamples = 2000;
  for (int i = 0; i <= kSamples; ++i) {
    const double z = z0 + (z1 - z0) * static_cast<double>(i) / kSamples;
    const double r = radius(z);
    if (r < best.radius) best = {z, r};
  }
  return best;
}

RadiusProfile hemolysin_profile() {
  // Control points chosen to match the published hemolysin lumen geometry
  // at coarse resolution: wide cis mouth, ~22 Å vestibule, ~7 Å
  // constriction at z = 0, ~10 Å beta-barrel through the membrane,
  // opening to the trans side.
  return RadiusProfile({
      {-75.0, 35.0},  // trans bulk
      {-60.0, 20.0},  // trans mouth
      {-50.0, 10.5},  // barrel exit
      {-25.0, 9.5},   // mid barrel
      {0.0, 7.0},     // constriction
      {10.0, 12.0},   // lower vestibule
      {30.0, 22.0},   // vestibule
      {50.0, 26.0},   // cis mouth
      {70.0, 35.0},   // cis bulk
  });
}

}  // namespace spice::pore
