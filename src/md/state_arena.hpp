#pragma once
// Shared dynamic-state slab for batched replicas.
//
// An EnsembleEngine steps N replicas of one topology; their dynamic
// columns (x, y, z, vx … fz) live in ONE contiguous allocation laid out
// replica-major: column c of replica r occupies
//
//   slab[(c·R + r)·n … (c·R + r + 1)·n)
//
// so each replica sees dense, SIMD-friendly per-column runs of length n
// (exactly what a standalone SystemState provides) while the whole
// ensemble stays one cache-warm block with zero per-replica allocations.
// A standalone SystemState is simply the R = 1 special case — every
// engine, batched or not, runs the same arena-backed code path.
//
// The arena holds no locking: replicas touch disjoint sub-ranges, and the
// EnsembleEngine's parallel stepping assigns each replica to exactly one
// worker at a time.

#include <cstddef>
#include <vector>

namespace spice::md {

class StateArena {
 public:
  /// Column ids of the nine dynamic per-particle arrays.
  enum Column : std::size_t { kX = 0, kY, kZ, kVx, kVy, kVz, kFx, kFy, kFz, kColumns };

  /// Zero-initialized slab for `replicas` replicas of `particles` each.
  StateArena(std::size_t particles, std::size_t replicas)
      : particles_(particles),
        replicas_(replicas),
        slab_(kColumns * particles * replicas, 0.0) {}

  [[nodiscard]] std::size_t particles() const { return particles_; }
  [[nodiscard]] std::size_t replicas() const { return replicas_; }

  /// Base of column `c` for replica `r` (a run of particles() doubles).
  [[nodiscard]] double* column(std::size_t c, std::size_t r) {
    return slab_.data() + (c * replicas_ + r) * particles_;
  }
  [[nodiscard]] const double* column(std::size_t c, std::size_t r) const {
    return slab_.data() + (c * replicas_ + r) * particles_;
  }

 private:
  std::size_t particles_;
  std::size_t replicas_;
  std::vector<double> slab_;
};

}  // namespace spice::md
