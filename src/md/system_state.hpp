#pragma once
// Structure-of-arrays dynamic state for the MD engine.
//
// The force hot path (kernels over bonded terms and cell-grid nonbonded
// pairs) reads positions and per-particle parameters millions of times per
// step. Storing them as packed parallel arrays — instead of an
// array-of-structs whose Particle records drag a std::string name through
// every cache line — keeps those reads dense and vectorizable. The charge,
// sigma (WCA radius) and 1/m columns are cached out of the Topology once
// at construction; the Topology stays the source of truth for everything
// structural (bonds, exclusions, names).
//
// Storage: the nine dynamic columns live in a StateArena — a standalone
// state owns a private single-replica arena; an ensemble replica binds to
// one slot of a shared replica-major slab (state_arena.hpp), so batched
// and standalone engines run the identical code path over identical
// per-column layouts. The cached parameter columns and the AoS mirrors
// stay per-state (replicas share a topology but may not share mirrors —
// the lazy sync is per-replica state).
//
// Conversion shims: positions()/velocities()/forces() return AoS
// std::span<const Vec3> views backed by lazily refreshed mirror buffers,
// so every existing consumer (ForceContribution implementations,
// observables, viz writers, checkpoint serialization) keeps working
// unchanged. The mirrors are invalidated whenever a mutable SoA span is
// handed out and re-synced on the next AoS read.
//
// Threading contract: the lazy AoS sync mutates a cache, so the FIRST
// AoS read after a SoA write must happen on one thread (the engine syncs
// positions once per force evaluation, before the parallel slice phase);
// concurrent reads of an already-synced view are safe.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "md/state_arena.hpp"

namespace spice::md {

class Topology;

class SystemState {
 public:
  SystemState() = default;

  /// Size the arrays for `topology` and cache its per-particle columns
  /// (charge, sigma, mass, 1/m). Dynamic arrays are zero-initialized and
  /// live in a private single-replica arena.
  void reset(const Topology& topology);

  /// Bind this state to slot `replica` of a shared ensemble arena instead
  /// of a private one. The slot's columns are zeroed; everything else
  /// matches reset(topology).
  void reset(const Topology& topology, std::shared_ptr<StateArena> arena,
             std::size_t replica);

  [[nodiscard]] std::size_t size() const { return n_; }

  // --- SoA views (canonical storage) -----------------------------------
  // Mutable spans invalidate the corresponding AoS mirror.
  [[nodiscard]] std::span<double> x() { positions_synced_ = false; return col(StateArena::kX); }
  [[nodiscard]] std::span<double> y() { positions_synced_ = false; return col(StateArena::kY); }
  [[nodiscard]] std::span<double> z() { positions_synced_ = false; return col(StateArena::kZ); }
  [[nodiscard]] std::span<double> vx() { velocities_synced_ = false; return col(StateArena::kVx); }
  [[nodiscard]] std::span<double> vy() { velocities_synced_ = false; return col(StateArena::kVy); }
  [[nodiscard]] std::span<double> vz() { velocities_synced_ = false; return col(StateArena::kVz); }
  [[nodiscard]] std::span<double> fx() { forces_synced_ = false; return col(StateArena::kFx); }
  [[nodiscard]] std::span<double> fy() { forces_synced_ = false; return col(StateArena::kFy); }
  [[nodiscard]] std::span<double> fz() { forces_synced_ = false; return col(StateArena::kFz); }

  [[nodiscard]] std::span<const double> x() const { return col(StateArena::kX); }
  [[nodiscard]] std::span<const double> y() const { return col(StateArena::kY); }
  [[nodiscard]] std::span<const double> z() const { return col(StateArena::kZ); }
  [[nodiscard]] std::span<const double> vx() const { return col(StateArena::kVx); }
  [[nodiscard]] std::span<const double> vy() const { return col(StateArena::kVy); }
  [[nodiscard]] std::span<const double> vz() const { return col(StateArena::kVz); }
  [[nodiscard]] std::span<const double> fx() const { return col(StateArena::kFx); }
  [[nodiscard]] std::span<const double> fy() const { return col(StateArena::kFy); }
  [[nodiscard]] std::span<const double> fz() const { return col(StateArena::kFz); }

  // --- cached per-particle parameters ----------------------------------
  [[nodiscard]] std::span<const double> charge() const { return charge_; }
  /// Per-particle WCA radius; a pair's sigma is sigma()[i] + sigma()[j].
  [[nodiscard]] std::span<const double> sigma() const { return sigma_; }
  [[nodiscard]] std::span<const double> mass() const { return mass_; }
  [[nodiscard]] std::span<const double> inv_mass() const { return inv_mass_; }

  // --- AoS conversion shims ---------------------------------------------
  [[nodiscard]] std::span<const Vec3> positions() const;
  [[nodiscard]] std::span<const Vec3> velocities() const;
  [[nodiscard]] std::span<const Vec3> forces() const;

  void set_positions(std::span<const Vec3> xs);
  void set_velocities(std::span<const Vec3> vs);
  void set_forces(std::span<const Vec3> fs);

 private:
  static void scatter(std::span<const Vec3> src, std::span<double> x,
                      std::span<double> y, std::span<double> z);
  static void gather(std::span<const double> x, std::span<const double> y,
                     std::span<const double> z, std::vector<Vec3>& out);

  [[nodiscard]] std::span<double> col(std::size_t c) {
    return {arena_->column(c, replica_), n_};
  }
  [[nodiscard]] std::span<const double> col(std::size_t c) const {
    return {arena_->column(c, replica_), n_};
  }

  std::size_t n_ = 0;
  std::shared_ptr<StateArena> arena_;
  std::size_t replica_ = 0;
  std::vector<double> charge_, sigma_, mass_, inv_mass_;

  mutable std::vector<Vec3> positions_aos_, velocities_aos_, forces_aos_;
  mutable bool positions_synced_ = false;
  mutable bool velocities_synced_ = false;
  mutable bool forces_synced_ = false;
};

}  // namespace spice::md
