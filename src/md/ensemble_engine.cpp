#include "md/ensemble_engine.hpp"

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "md/state_arena.hpp"
#include "obs/obs.hpp"

namespace spice::md {

EnsembleEngine::EnsembleEngine(const Engine& master, std::span<const std::uint64_t> seeds,
                               EnsembleConfig config) {
  SPICE_REQUIRE(!seeds.empty(), "ensemble needs at least one replica");
  auto arena =
      std::make_shared<StateArena>(master.topology().particle_count(), seeds.size());
  MdConfig cfg = master.config();
  // One worker per replica step: the ensemble pool is the only parallelism
  // layer, so a replica's slice pipeline runs serially — exactly the
  // threads = 1 standalone engine the determinism contract compares to.
  cfg.threads = 1;
  replicas_.reserve(seeds.size());
  for (std::size_t r = 0; r < seeds.size(); ++r) {
    cfg.seed = seeds[r];
    replicas_.push_back(master.clone_with(cfg, arena, r));
  }
  if (config.threads > 1) pool_ = std::make_unique<ThreadPool>(config.threads);
  static obs::Counter& built = obs::metrics().counter("md.ensemble.replicas");
  built.add(seeds.size());
}

EnsembleEngine::~EnsembleEngine() = default;
EnsembleEngine::EnsembleEngine(EnsembleEngine&&) noexcept = default;
EnsembleEngine& EnsembleEngine::operator=(EnsembleEngine&&) noexcept = default;

void EnsembleEngine::add_contribution(std::size_t r,
                                      std::shared_ptr<ForceContribution> contribution) {
  SPICE_REQUIRE(r < replicas_.size(), "replica index out of range");
  replicas_[r].add_contribution(std::move(contribution));
}

void EnsembleEngine::remove_contribution(std::size_t r,
                                         const ForceContribution* contribution) {
  SPICE_REQUIRE(r < replicas_.size(), "replica index out of range");
  replicas_[r].remove_contribution(contribution);
}

void EnsembleEngine::step_all(std::size_t n) {
  static obs::Counter& steps = obs::metrics().counter("md.ensemble.replica_steps");
  // Pool workers start with an empty thread-local context, so the caller's
  // context is captured here and re-installed (narrowed per replica) inside
  // each worker — engine spans then carry campaign.job.replica ids.
  const obs::TraceContext caller_ctx = obs::current_context();
  auto run = [this, n, caller_ctx](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      obs::ContextScope scope(caller_ctx.with_replica(r));
      SPICE_RECORD_SPAN("md.ensemble.replica_step");
      replicas_[r].step(n);
    }
  };
  if (pool_) {
    pool_->parallel_for(replicas_.size(), run);
  } else {
    run(0, replicas_.size());
  }
  steps.add(n * replicas_.size());
}

}  // namespace spice::md
