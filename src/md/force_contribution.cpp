#include "md/force_contribution.hpp"

#include "common/error.hpp"
#include "md/topology.hpp"

namespace spice::md {

double ForceContribution::begin_evaluation(std::span<const Vec3> /*positions*/,
                                           const Topology& /*topology*/, double /*time*/) {
  return 0.0;
}

double ForceContribution::add_forces(std::span<const Vec3> positions, const Topology& topology,
                                     double time, std::span<Vec3> forces) {
  SPICE_REQUIRE(positions.size() == forces.size(), "positions/forces size mismatch");
  double energy = begin_evaluation(positions, topology, time);
  energy += accumulate_range(positions, topology, time, 0, positions.size(), forces);
  return energy;
}

double PerParticlePotential::accumulate_range(std::span<const Vec3> positions,
                                              const Topology& topology, double /*time*/,
                                              std::size_t begin, std::size_t end,
                                              std::span<Vec3> forces) {
  SPICE_REQUIRE(end <= positions.size() && positions.size() == forces.size(),
                "range/positions/forces size mismatch");
  const auto& particles = topology.particles();
  double energy = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    Vec3 f;
    energy += particle_energy_force(positions[i], particles[i].charge, f);
    forces[i] += f;
  }
  return energy;
}

}  // namespace spice::md
