#include "md/force_contribution.hpp"

#include "common/error.hpp"
#include "md/topology.hpp"

namespace spice::md {

double PerParticlePotential::add_forces(std::span<const Vec3> positions,
                                        const Topology& topology, double /*time*/,
                                        std::span<Vec3> forces) {
  SPICE_REQUIRE(positions.size() == forces.size(), "positions/forces size mismatch");
  const auto& particles = topology.particles();
  double energy = 0.0;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    Vec3 f;
    energy += particle_energy_force(positions[i], particles[i].charge, f);
    forces[i] += f;
  }
  return energy;
}

}  // namespace spice::md
