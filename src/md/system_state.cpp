#include "md/system_state.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "md/topology.hpp"

namespace spice::md {

void SystemState::reset(const Topology& topology) {
  reset(topology, std::make_shared<StateArena>(topology.particle_count(), 1), 0);
}

void SystemState::reset(const Topology& topology, std::shared_ptr<StateArena> arena,
                        std::size_t replica) {
  SPICE_REQUIRE(arena != nullptr, "SystemState needs an arena");
  SPICE_REQUIRE(arena->particles() == topology.particle_count(),
                "arena particle count does not match topology");
  SPICE_REQUIRE(replica < arena->replicas(), "replica slot out of arena range");
  n_ = topology.particle_count();
  arena_ = std::move(arena);
  replica_ = replica;
  for (std::size_t c = 0; c < StateArena::kColumns; ++c) {
    auto span = col(c);
    std::fill(span.begin(), span.end(), 0.0);
  }
  charge_.clear();
  sigma_.clear();
  mass_.clear();
  inv_mass_.clear();
  charge_.reserve(n_);
  sigma_.reserve(n_);
  mass_.reserve(n_);
  inv_mass_.reserve(n_);
  for (const auto& p : topology.particles()) {
    charge_.push_back(p.charge);
    sigma_.push_back(p.radius);
    mass_.push_back(p.mass);
    inv_mass_.push_back(1.0 / p.mass);
  }
  positions_aos_.assign(n_, Vec3{});
  velocities_aos_.assign(n_, Vec3{});
  forces_aos_.assign(n_, Vec3{});
  positions_synced_ = velocities_synced_ = forces_synced_ = true;
}

void SystemState::scatter(std::span<const Vec3> src, std::span<double> x,
                          std::span<double> y, std::span<double> z) {
  for (std::size_t i = 0; i < src.size(); ++i) {
    x[i] = src[i].x;
    y[i] = src[i].y;
    z[i] = src[i].z;
  }
}

void SystemState::gather(std::span<const double> x, std::span<const double> y,
                         std::span<const double> z, std::vector<Vec3>& out) {
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = {x[i], y[i], z[i]};
}

std::span<const Vec3> SystemState::positions() const {
  if (!positions_synced_) {
    gather(x(), y(), z(), positions_aos_);
    positions_synced_ = true;
  }
  return positions_aos_;
}

std::span<const Vec3> SystemState::velocities() const {
  if (!velocities_synced_) {
    gather(vx(), vy(), vz(), velocities_aos_);
    velocities_synced_ = true;
  }
  return velocities_aos_;
}

std::span<const Vec3> SystemState::forces() const {
  if (!forces_synced_) {
    gather(fx(), fy(), fz(), forces_aos_);
    forces_synced_ = true;
  }
  return forces_aos_;
}

void SystemState::set_positions(std::span<const Vec3> xs) {
  SPICE_REQUIRE(xs.size() == n_, "position count mismatch");
  scatter(xs, col(StateArena::kX), col(StateArena::kY), col(StateArena::kZ));
  positions_aos_.assign(xs.begin(), xs.end());
  positions_synced_ = true;
}

void SystemState::set_velocities(std::span<const Vec3> vs) {
  SPICE_REQUIRE(vs.size() == n_, "velocity count mismatch");
  scatter(vs, col(StateArena::kVx), col(StateArena::kVy), col(StateArena::kVz));
  velocities_aos_.assign(vs.begin(), vs.end());
  velocities_synced_ = true;
}

void SystemState::set_forces(std::span<const Vec3> fs) {
  SPICE_REQUIRE(fs.size() == n_, "force count mismatch");
  scatter(fs, col(StateArena::kFx), col(StateArena::kFy), col(StateArena::kFz));
  forces_aos_.assign(fs.begin(), fs.end());
  forces_synced_ = true;
}

}  // namespace spice::md
