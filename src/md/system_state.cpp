#include "md/system_state.hpp"

#include "common/error.hpp"
#include "md/topology.hpp"

namespace spice::md {

void SystemState::reset(const Topology& topology) {
  n_ = topology.particle_count();
  auto zero = [this](std::vector<double>& v) { v.assign(n_, 0.0); };
  zero(x_);
  zero(y_);
  zero(z_);
  zero(vx_);
  zero(vy_);
  zero(vz_);
  zero(fx_);
  zero(fy_);
  zero(fz_);
  charge_.clear();
  sigma_.clear();
  mass_.clear();
  inv_mass_.clear();
  charge_.reserve(n_);
  sigma_.reserve(n_);
  mass_.reserve(n_);
  inv_mass_.reserve(n_);
  for (const auto& p : topology.particles()) {
    charge_.push_back(p.charge);
    sigma_.push_back(p.radius);
    mass_.push_back(p.mass);
    inv_mass_.push_back(1.0 / p.mass);
  }
  positions_aos_.assign(n_, Vec3{});
  velocities_aos_.assign(n_, Vec3{});
  forces_aos_.assign(n_, Vec3{});
  positions_synced_ = velocities_synced_ = forces_synced_ = true;
}

void SystemState::scatter(std::span<const Vec3> src, std::vector<double>& x,
                          std::vector<double>& y, std::vector<double>& z) {
  for (std::size_t i = 0; i < src.size(); ++i) {
    x[i] = src[i].x;
    y[i] = src[i].y;
    z[i] = src[i].z;
  }
}

void SystemState::gather(std::span<const double> x, std::span<const double> y,
                         std::span<const double> z, std::vector<Vec3>& out) {
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = {x[i], y[i], z[i]};
}

std::span<const Vec3> SystemState::positions() const {
  if (!positions_synced_) {
    gather(x_, y_, z_, positions_aos_);
    positions_synced_ = true;
  }
  return positions_aos_;
}

std::span<const Vec3> SystemState::velocities() const {
  if (!velocities_synced_) {
    gather(vx_, vy_, vz_, velocities_aos_);
    velocities_synced_ = true;
  }
  return velocities_aos_;
}

std::span<const Vec3> SystemState::forces() const {
  if (!forces_synced_) {
    gather(fx_, fy_, fz_, forces_aos_);
    forces_synced_ = true;
  }
  return forces_aos_;
}

void SystemState::set_positions(std::span<const Vec3> xs) {
  SPICE_REQUIRE(xs.size() == n_, "position count mismatch");
  scatter(xs, x_, y_, z_);
  positions_aos_.assign(xs.begin(), xs.end());
  positions_synced_ = true;
}

void SystemState::set_velocities(std::span<const Vec3> vs) {
  SPICE_REQUIRE(vs.size() == n_, "velocity count mismatch");
  scatter(vs, vx_, vy_, vz_);
  velocities_aos_.assign(vs.begin(), vs.end());
  velocities_synced_ = true;
}

void SystemState::set_forces(std::span<const Vec3> fs) {
  SPICE_REQUIRE(fs.size() == n_, "force count mismatch");
  scatter(fs, fx_, fy_, fz_);
  forces_aos_.assign(fs.begin(), fs.end());
  forces_synced_ = true;
}

}  // namespace spice::md
