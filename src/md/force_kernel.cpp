#include "md/force_kernel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "md/system_state.hpp"
#include "md/topology.hpp"

namespace spice::md {

namespace {
/// Share [lo, hi) of `total` items assigned to slice s of S.
struct Share {
  std::size_t lo;
  std::size_t hi;
};
Share share_of(std::size_t total, std::size_t slice, std::size_t slice_count) {
  return {total * slice / slice_count, total * (slice + 1) / slice_count};
}
}  // namespace

// --- ForceWorkspace ------------------------------------------------------

void ForceWorkspace::configure(std::size_t particles, std::size_t slices,
                               std::size_t external_terms) {
  constexpr auto kTerms = static_cast<std::size_t>(EnergyTerm::kCount);
  if (slices_.size() != slices || particles_ != particles) {
    slices_.assign(slices, ForceAccumulator{});
    for (auto& s : slices_) {
      s.forces_.assign(particles, Vec3{});
      s.lo_ = particles;
      s.hi_ = 0;
    }
    particles_ = particles;
  }
  term_energy_.assign(slices * kTerms, 0.0);
  external_terms_ = external_terms;
  external_energy_.assign(slices * external_terms, 0.0);
}

ForceAccumulator& ForceWorkspace::acquire_slice(std::size_t s) {
  ForceAccumulator& acc = slices_[s];
  // Invariant: outside the touched window the buffer is already zero.
  for (std::size_t i = acc.lo_; i < acc.hi_; ++i) acc.forces_[i] = Vec3{};
  acc.lo_ = particles_;
  acc.hi_ = 0;
  constexpr auto kTerms = static_cast<std::size_t>(EnergyTerm::kCount);
  std::fill_n(term_energy_.begin() + static_cast<std::ptrdiff_t>(s * kTerms), kTerms, 0.0);
  std::fill_n(external_energy_.begin() + static_cast<std::ptrdiff_t>(s * external_terms_),
              external_terms_, 0.0);
  return acc;
}

void ForceWorkspace::reduce_forces(std::span<double> fx, std::span<double> fy,
                                   std::span<double> fz, ThreadPool* pool) const {
  auto reduce_range = [this, &fx, &fy, &fz](std::size_t begin, std::size_t end) {
    // Slice-major over the range: zero, then add each slice's touched
    // window clipped to [begin, end). Per particle this still sums the
    // slices in ascending order — the same rounding as the historical
    // particle-major loop and independent of how particles are chunked
    // across threads — but the inner loops are dense and branch-free
    // instead of testing every slice window per particle.
    std::fill(fx.begin() + static_cast<std::ptrdiff_t>(begin),
              fx.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
    std::fill(fy.begin() + static_cast<std::ptrdiff_t>(begin),
              fy.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
    std::fill(fz.begin() + static_cast<std::ptrdiff_t>(begin),
              fz.begin() + static_cast<std::ptrdiff_t>(end), 0.0);
    for (const auto& s : slices_) {
      const std::size_t lo = std::max(begin, s.lo_);
      const std::size_t hi = std::min(end, s.hi_);
      for (std::size_t i = lo; i < hi; ++i) {
        fx[i] += s.forces_[i].x;
        fy[i] += s.forces_[i].y;
        fz[i] += s.forces_[i].z;
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(particles_, reduce_range);
  } else {
    reduce_range(0, particles_);
  }
}

double ForceWorkspace::reduced_energy(EnergyTerm term) const {
  constexpr auto kTerms = static_cast<std::size_t>(EnergyTerm::kCount);
  double total = 0.0;
  for (std::size_t s = 0; s < slices_.size(); ++s) {
    total += term_energy_[s * kTerms + static_cast<std::size_t>(term)];
  }
  return total;
}

double ForceWorkspace::reduced_external(std::size_t contribution) const {
  double total = 0.0;
  for (std::size_t s = 0; s < slices_.size(); ++s) {
    total += external_energy_[s * external_terms_ + contribution];
  }
  return total;
}

// --- bonded kernels ------------------------------------------------------

void BondKernel::begin_evaluation(const KernelContext& ctx) {
  if (ctx.simd == simd::Level::Scalar) return;
  // The bond table is immutable after Topology::finalize, so the packed
  // SoA streams and per-slice windows only rebuild when the slice count
  // changes (or on first use).
  if (packed_.built && packed_.slice_count == ctx.slice_count) return;
  const auto& bonds = ctx.topology->bonds();
  packed_.i.clear();
  packed_.j.clear();
  packed_.k.clear();
  packed_.r0.clear();
  packed_.i.reserve(bonds.size());
  packed_.j.reserve(bonds.size());
  packed_.k.reserve(bonds.size());
  packed_.r0.reserve(bonds.size());
  for (const Bond& bond : bonds) {
    packed_.i.push_back(static_cast<std::uint32_t>(bond.i));
    packed_.j.push_back(static_cast<std::uint32_t>(bond.j));
    packed_.k.push_back(bond.k);
    packed_.r0.push_back(bond.r0);
  }
  packed_.lo.assign(ctx.slice_count, 0);
  packed_.hi.assign(ctx.slice_count, 0);
  for (std::size_t s = 0; s < ctx.slice_count; ++s) {
    const auto [lo, hi] = share_of(bonds.size(), s, ctx.slice_count);
    std::size_t plo = ctx.state->size();
    std::size_t phi = 0;
    for (std::size_t b = lo; b < hi; ++b) {
      plo = std::min<std::size_t>(plo, std::min(bonds[b].i, bonds[b].j));
      phi = std::max<std::size_t>(phi, std::max(bonds[b].i, bonds[b].j) + 1);
    }
    packed_.lo[s] = plo;
    packed_.hi[s] = phi;
  }
  packed_.slice_count = ctx.slice_count;
  packed_.built = true;
}

double BondKernel::evaluate_slice(const KernelContext& ctx, std::size_t slice,
                                  std::size_t slice_count, ForceAccumulator& acc) {
  const auto& bonds = ctx.topology->bonds();
  const auto [lo, hi] = share_of(bonds.size(), slice, slice_count);
  if (ctx.simd != simd::Level::Scalar) {
    if (lo >= hi) return 0.0;
    acc.note_range(packed_.lo[slice], packed_.hi[slice]);
    const simd::BondBatch batch{
        ctx.state->x().data(), ctx.state->y().data(), ctx.state->z().data(),
        packed_.i.data() + lo,  packed_.j.data() + lo,
        packed_.k.data() + lo,  packed_.r0.data() + lo,
        hi - lo};
    return simd::bond_kernel(ctx.simd)(batch, acc.span().data());
  }
  const auto xs = ctx.state->positions();
  double energy = 0.0;
  for (std::size_t b = lo; b < hi; ++b) {
    const Bond& bond = bonds[b];
    const EnergyForce ef = harmonic_bond(xs[bond.i], xs[bond.j], bond.k, bond.r0);
    energy += ef.energy;
    acc.add(bond.i, ef.force_on_i);
    acc.add(bond.j, -ef.force_on_i);
  }
  return energy;
}

double AngleKernel::evaluate_slice(const KernelContext& ctx, std::size_t slice,
                                   std::size_t slice_count, ForceAccumulator& acc) {
  const auto& angles = ctx.topology->angles();
  const auto xs = ctx.state->positions();
  const auto [lo, hi] = share_of(angles.size(), slice, slice_count);
  double energy = 0.0;
  for (std::size_t a = lo; a < hi; ++a) {
    const Angle& angle = angles[a];
    Vec3 fi;
    Vec3 fj;
    Vec3 fk;
    energy += harmonic_angle(xs[angle.i], xs[angle.j], xs[angle.k], angle.k_theta,
                             angle.theta0, fi, fj, fk);
    acc.add(angle.i, fi);
    acc.add(angle.j, fj);
    acc.add(angle.k, fk);
  }
  return energy;
}

double DihedralKernel::evaluate_slice(const KernelContext& ctx, std::size_t slice,
                                      std::size_t slice_count, ForceAccumulator& acc) {
  const auto& dihedrals = ctx.topology->dihedrals();
  const auto xs = ctx.state->positions();
  const auto [lo, hi] = share_of(dihedrals.size(), slice, slice_count);
  double energy = 0.0;
  for (std::size_t d = lo; d < hi; ++d) {
    const Dihedral& dih = dihedrals[d];
    Vec3 fi;
    Vec3 fj;
    Vec3 fk;
    Vec3 fl;
    energy += periodic_dihedral(xs[dih.i], xs[dih.j], xs[dih.k], xs[dih.l], dih.k_phi,
                                dih.multiplicity, dih.delta, fi, fj, fk, fl);
    acc.add(dih.i, fi);
    acc.add(dih.j, fj);
    acc.add(dih.k, fk);
    acc.add(dih.l, fl);
  }
  return energy;
}

// --- nonbonded kernel ----------------------------------------------------

void NonbondedKernel::begin_evaluation(const KernelContext& ctx) {
  // Size the segment table serially: slices may not mutate the vector
  // itself (a lazy resize inside evaluate_slice is a data race against the
  // other slices' element reads). assign() rather than resize() so a
  // slice-count change also invalidates every cached epoch.
  if (segments_.size() != ctx.slice_count) {
    segments_.assign(ctx.slice_count, SliceSegment{});
  }
  if (ctx.simd != simd::Level::Scalar) {
    // Refresh the packed (x,y,z,0) mirror the vector kernels load pair
    // displacements from. Serial: every slice reads the same array.
    const auto x = ctx.state->x();
    const auto y = ctx.state->y();
    const auto z = ctx.state->z();
    const std::size_t n = x.size();
    xyzw_.resize(4 * n);
    for (std::size_t i = 0; i < n; ++i) {
      xyzw_[4 * i + 0] = x[i];
      xyzw_[4 * i + 1] = y[i];
      xyzw_[4 * i + 2] = z[i];
      xyzw_[4 * i + 3] = 0.0;
    }
  }
}

void NonbondedKernel::refresh_segment(const KernelContext& ctx, std::size_t slice,
                                      std::size_t slice_count) {
  (void)slice_count;
  SliceSegment& seg = segments_[slice];
  seg.pairs.clear();
  seg.pi.clear();
  seg.pj.clear();
  seg.sigma.clear();
  seg.pref.clear();
  seg.sig2f.clear();
  seg.pref_f.clear();
  const NeighborList& list = *ctx.neighbors;
  // Filter against the positions the cell bins were built from, not the
  // current ones. On the normal path they are the same array (a refresh
  // always follows a rebuild within one evaluation), but after a
  // checkpoint restore the list is rebuilt from the snapshot's reference
  // positions — filtering against those keeps the segment a pure function
  // of the cell table, so a restored engine replays bit-exactly.
  const auto xs = list.reference_positions();
  const double reach = list.cutoff() + list.skin();
  const double reach2 = reach * reach;
  std::size_t lo = ctx.state->size();
  std::size_t hi = 0;
  list.for_each_candidate_pair(slice, slice_count, [&](std::uint32_t a, std::uint32_t b) {
    if (distance2(xs[a], xs[b]) > reach2) return;
    if (ctx.topology->excluded(a, b)) return;
    seg.pairs.push_back({a, b});
    lo = std::min<std::size_t>(lo, std::min(a, b));
    hi = std::max<std::size_t>(hi, std::max(a, b) + 1);
  });
  seg.lo = lo;
  seg.hi = hi;
  seg.epoch = list.epoch();
  if (ctx.simd != simd::Level::Scalar) {
    // Pack the per-pair streams the vector kernels consume: indices plus
    // sigma_i+sigma_j and the full Coulomb prefactor (0 for neutral pairs,
    // which is exactly the vector kernels' DH mask condition).
    const auto q = ctx.state->charge();
    const auto radius = ctx.state->sigma();
    const double coulomb_pref = units::kCoulomb / ctx.nonbonded->dielectric;
    seg.pi.reserve(seg.pairs.size());
    seg.pj.reserve(seg.pairs.size());
    seg.sigma.reserve(seg.pairs.size());
    seg.pref.reserve(seg.pairs.size());
    seg.sig2f.reserve(seg.pairs.size());
    seg.pref_f.reserve(seg.pairs.size());
    for (const auto [a, b] : seg.pairs) {
      const double sigma = radius[a] + radius[b];
      const double pref = coulomb_pref * q[a] * q[b];
      seg.pi.push_back(a);
      seg.pj.push_back(b);
      seg.sigma.push_back(sigma);
      seg.pref.push_back(pref);
      seg.sig2f.push_back(static_cast<float>(sigma * sigma));
      seg.pref_f.push_back(static_cast<float>(pref));
    }
  }
}

double NonbondedKernel::evaluate_slice(const KernelContext& ctx, std::size_t slice,
                                       std::size_t slice_count, ForceAccumulator& acc) {
  SPICE_REQUIRE(slice < segments_.size(), "nonbonded segments not sized in begin_evaluation");
  if (segments_[slice].epoch != ctx.neighbors->epoch()) {
    refresh_segment(ctx, slice, slice_count);
  }
  const SliceSegment& seg = segments_[slice];
  if (seg.pairs.empty()) return 0.0;
  acc.note_range(seg.lo, seg.hi);

  const NonbondedParams& params = *ctx.nonbonded;

  // Hoisted constants: the seed inner loop re-derived the DH cutoff shift
  // (a second exp!) and the WCA 2^(1/3) factor for every pair.
  const double cutoff2 = params.cutoff * params.cutoff;
  const double epsilon = params.epsilon_wca;
  const double inv_lambda = 1.0 / params.debye_length;
  const double coulomb_pref = units::kCoulomb / params.dielectric;
  const double shift_per_pref = std::exp(-params.cutoff * inv_lambda) / params.cutoff;
  const double wca_lift = std::cbrt(2.0);  // (2^{1/6} σ)² = 2^{1/3} σ²

  if (ctx.simd != simd::Level::Scalar) {
    const simd::PairBatch batch{
        ctx.state->x().data(), ctx.state->y().data(), ctx.state->z().data(),
        xyzw_.data(),
        seg.pi.data(),         seg.pj.data(),
        seg.sigma.data(),      seg.pref.data(),
        seg.sig2f.data(),      seg.pref_f.data(),
        seg.pairs.size()};
    const simd::NonbondedConsts consts{cutoff2, epsilon, inv_lambda, shift_per_pref,
                                       wca_lift};
    return simd::nonbonded_kernel(ctx.simd)(batch, consts, acc.span().data());
  }

  const auto xs = ctx.state->positions();
  const auto q = ctx.state->charge();
  const auto radius = ctx.state->sigma();

  double energy = 0.0;
  for (const auto [i, j] : seg.pairs) {
    const Vec3 dr = xs[i] - xs[j];
    const double r2 = dr.norm2();
    // The segment keeps pairs out to cutoff + skin; beyond the cutoff both
    // terms vanish, so skip before any sqrt/exp.
    if (r2 >= cutoff2 || r2 <= 0.0) continue;
    Vec3 f;
    const double sigma = radius[i] + radius[j];
    const double wca_rc2 = sigma * sigma * wca_lift;
    if (r2 < wca_rc2) {
      const double s2 = sigma * sigma / r2;
      const double s6 = s2 * s2 * s2;
      const double s12 = s6 * s6;
      energy += 4.0 * epsilon * (s12 - s6) + epsilon;
      f += dr * (24.0 * epsilon * (2.0 * s12 - s6) / r2);
    }
    const double qq = q[i] * q[j];
    if (qq != 0.0) {
      const double r = std::sqrt(r2);
      const double pref = coulomb_pref * qq;
      const double u_r = pref * std::exp(-r * inv_lambda) / r;
      energy += u_r - pref * shift_per_pref;
      f += dr * (u_r * (1.0 / r + inv_lambda) / r);
    }
    acc[i] += f;
    acc[j] -= f;
  }
  return energy;
}

}  // namespace spice::md
