#include "md/neighbor_list.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

#include "common/error.hpp"
#include "md/topology.hpp"

namespace spice::md {

NeighborList::NeighborList(double cutoff, double skin) : cutoff_(cutoff), skin_(skin) {
  SPICE_REQUIRE(cutoff > 0.0, "neighbour list cutoff must be positive");
  SPICE_REQUIRE(skin > 0.0, "neighbour list skin must be positive");
}

bool NeighborList::needs_rebuild(std::span<const Vec3> positions) const {
  if (reference_positions_.size() != positions.size()) return true;
  const double limit2 = 0.25 * skin_ * skin_;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (distance2(positions[i], reference_positions_[i]) > limit2) return true;
  }
  return false;
}

bool NeighborList::maybe_rebuild(std::span<const Vec3> positions, const Topology& topology) {
  if (!needs_rebuild(positions)) return false;
  rebuild(positions, topology);
  return true;
}

void NeighborList::rebuild(std::span<const Vec3> positions, const Topology& topology) {
  SPICE_REQUIRE(positions.size() == topology.particle_count(),
                "positions/topology size mismatch");
  pairs_.clear();
  reference_positions_.assign(positions.begin(), positions.end());
  ++rebuilds_;
  const std::size_t n = positions.size();
  if (n < 2) return;

  const double reach = cutoff_ + skin_;
  const double reach2 = reach * reach;

  // Cell grid keyed by quantized coordinates (open boundaries → sparse map).
  const double cell = reach;
  auto cell_of = [cell](const Vec3& r) {
    const auto cx = static_cast<std::int64_t>(std::floor(r.x / cell));
    const auto cy = static_cast<std::int64_t>(std::floor(r.y / cell));
    const auto cz = static_cast<std::int64_t>(std::floor(r.z / cell));
    return std::array<std::int64_t, 3>{cx, cy, cz};
  };
  auto key_of = [](const std::array<std::int64_t, 3>& c) {
    // 21 bits per axis, offset to keep values positive.
    constexpr std::int64_t kOffset = 1 << 20;
    return static_cast<std::uint64_t>(((c[0] + kOffset) & 0x1fffff)) |
           (static_cast<std::uint64_t>((c[1] + kOffset) & 0x1fffff) << 21) |
           (static_cast<std::uint64_t>((c[2] + kOffset) & 0x1fffff) << 42);
  };

  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> grid;
  grid.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    grid[key_of(cell_of(positions[i]))].push_back(static_cast<std::uint32_t>(i));
  }

  for (std::size_t i = 0; i < n; ++i) {
    const auto ci = cell_of(positions[i]);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dz = -1; dz <= 1; ++dz) {
          const auto it = grid.find(key_of({ci[0] + dx, ci[1] + dy, ci[2] + dz}));
          if (it == grid.end()) continue;
          for (const std::uint32_t j : it->second) {
            if (j <= i) continue;  // each pair once, i < j
            if (distance2(positions[i], positions[j]) > reach2) continue;
            if (topology.excluded(static_cast<ParticleIndex>(i), j)) continue;
            pairs_.push_back({static_cast<std::uint32_t>(i), j});
          }
        }
      }
    }
  }
  // Deterministic pair order regardless of hash-map iteration quirks.
  std::sort(pairs_.begin(), pairs_.end(), [](const NeighborPair& a, const NeighborPair& b) {
    return a.i != b.i ? a.i < b.i : a.j < b.j;
  });
}

}  // namespace spice::md
