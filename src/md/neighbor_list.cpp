#include "md/neighbor_list.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "md/topology.hpp"

namespace spice::md {

NeighborList::NeighborList(double cutoff, double skin) : cutoff_(cutoff), skin_(skin) {
  SPICE_REQUIRE(cutoff > 0.0, "neighbour list cutoff must be positive");
  SPICE_REQUIRE(skin > 0.0, "neighbour list skin must be positive");
}

bool NeighborList::needs_rebuild(std::span<const Vec3> positions) const {
  if (reference_positions_.size() != positions.size()) return true;
  const double limit2 = 0.25 * skin_ * skin_;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (distance2(positions[i], reference_positions_[i]) > limit2) return true;
  }
  return false;
}

bool NeighborList::maybe_rebuild(std::span<const Vec3> positions, const Topology& topology) {
  if (!needs_rebuild(positions)) return false;
  rebuild(positions, topology);
  return true;
}

std::array<std::int64_t, 3> NeighborList::cell_of(const Vec3& r, double cell) {
  return {static_cast<std::int64_t>(std::floor(r.x / cell)),
          static_cast<std::int64_t>(std::floor(r.y / cell)),
          static_cast<std::int64_t>(std::floor(r.z / cell))};
}

std::uint64_t NeighborList::key_of(const std::array<std::int64_t, 3>& c) {
  // 21 bits per axis, offset to keep values positive.
  constexpr std::int64_t kOffset = 1 << 20;
  return static_cast<std::uint64_t>(((c[0] + kOffset) & 0x1fffff)) |
         (static_cast<std::uint64_t>((c[1] + kOffset) & 0x1fffff) << 21) |
         (static_cast<std::uint64_t>((c[2] + kOffset) & 0x1fffff) << 42);
}

void NeighborList::rebuild(std::span<const Vec3> positions, const Topology& topology) {
  SPICE_REQUIRE(positions.size() == topology.particle_count(),
                "positions/topology size mismatch");
  reference_positions_.assign(positions.begin(), positions.end());
  ++rebuilds_;
  pairs_valid_ = false;

  const std::size_t n = positions.size();
  const double cell = cutoff_ + skin_;

  // Bin particles: stable sort by packed cell key keeps ids ascending
  // within a cell, which fixes every downstream iteration order.
  std::vector<std::uint64_t> particle_key(n);
  for (std::size_t i = 0; i < n; ++i) particle_key[i] = key_of(cell_of(positions[i], cell));
  cell_particles_.resize(n);
  std::iota(cell_particles_.begin(), cell_particles_.end(), 0u);
  std::stable_sort(cell_particles_.begin(), cell_particles_.end(),
                   [&particle_key](std::uint32_t a, std::uint32_t b) {
                     return particle_key[a] < particle_key[b];
                   });

  cell_keys_.clear();
  cell_coords_.clear();
  cell_begin_.clear();
  for (std::size_t p = 0; p < n; ++p) {
    const std::uint32_t id = cell_particles_[p];
    if (cell_keys_.empty() || cell_keys_.back() != particle_key[id]) {
      cell_keys_.push_back(particle_key[id]);
      cell_coords_.push_back(cell_of(positions[id], cell));
      cell_begin_.push_back(static_cast<std::uint32_t>(p));
    }
  }
  cell_begin_.push_back(static_cast<std::uint32_t>(n));

  if (keep_pairs_) materialize_pairs(positions, topology);
}

void NeighborList::materialize_pairs(std::span<const Vec3> positions,
                                     const Topology& topology) {
  pairs_.clear();
  const double reach = cutoff_ + skin_;
  const double reach2 = reach * reach;
  for_each_candidate_pair(0, 1, [&](std::uint32_t a, std::uint32_t b) {
    if (distance2(positions[a], positions[b]) > reach2) return;
    if (topology.excluded(a, b)) return;
    pairs_.push_back({std::min(a, b), std::max(a, b)});
  });
  // Deterministic, consumer-friendly order (ascending i, then j).
  std::sort(pairs_.begin(), pairs_.end(), [](const NeighborPair& a, const NeighborPair& b) {
    return a.i != b.i ? a.i < b.i : a.j < b.j;
  });
  pairs_valid_ = true;
}

const std::vector<NeighborPair>& NeighborList::pairs() const {
  SPICE_REQUIRE(pairs_valid_,
                "materialized pair list requested but keep_pairs() was off at build time");
  return pairs_;
}

}  // namespace spice::md
