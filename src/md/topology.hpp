#pragma once
// Molecular topology: particles, bonded terms and nonbonded exclusions.
//
// This is the coarse-grained stand-in for the paper's all-atom NAMD
// topology (see DESIGN.md §2): one bead per nucleotide, harmonic bonds,
// harmonic angles for bending stiffness, and 1-2 / 1-3 nonbonded
// exclusions as is conventional for bead–spring polymer models.

#include <cstdint>
#include <string>
#include <vector>

namespace spice::md {

using ParticleIndex = std::uint32_t;

struct Particle {
  double mass = 1.0;      ///< g/mol
  double charge = 0.0;    ///< elementary charges
  double radius = 1.0;    ///< WCA radius (Å); pair sigma is r_i + r_j
  std::string name;       ///< label for trajectory output (e.g. "NT")
};

struct Bond {
  ParticleIndex i = 0;
  ParticleIndex j = 0;
  double k = 0.0;   ///< kcal/mol/Å² (harmonic: U = k (r - r0)²; note: no 1/2)
  double r0 = 0.0;  ///< Å
};

struct Angle {
  ParticleIndex i = 0;  ///< outer
  ParticleIndex j = 0;  ///< apex
  ParticleIndex k = 0;  ///< outer
  double k_theta = 0.0;  ///< kcal/mol/rad²  (U = k_theta (θ - θ0)²)
  double theta0 = 0.0;   ///< radians
};

/// Periodic torsion over the i-j-k-l chain:
/// U = k_phi (1 + cos(n φ − δ)).
struct Dihedral {
  ParticleIndex i = 0;
  ParticleIndex j = 0;
  ParticleIndex k = 0;
  ParticleIndex l = 0;
  double k_phi = 0.0;   ///< kcal/mol
  int multiplicity = 1; ///< n ≥ 1
  double delta = 0.0;   ///< phase, radians
};

/// Builder + container for the molecular topology. Once finalized (first
/// use by an Engine), the exclusion table is built and the topology is
/// conceptually immutable.
class Topology {
 public:
  /// Add a particle, returning its index.
  ParticleIndex add_particle(const Particle& p);

  /// Add a harmonic bond between existing particles (also excludes the
  /// pair from nonbonded interactions).
  void add_bond(const Bond& b);

  /// Add a harmonic angle among existing particles (also excludes the
  /// (i,k) 1-3 pair from nonbonded interactions).
  void add_angle(const Angle& a);

  /// Add a periodic torsion (also excludes the (i,l) 1-4 pair — full 1-4
  /// exclusion as in simple coarse-grained force fields).
  void add_dihedral(const Dihedral& d);

  /// Explicitly exclude a pair from nonbonded interactions.
  void add_exclusion(ParticleIndex i, ParticleIndex j);

  [[nodiscard]] std::size_t particle_count() const { return particles_.size(); }
  [[nodiscard]] const std::vector<Particle>& particles() const { return particles_; }
  [[nodiscard]] const std::vector<Bond>& bonds() const { return bonds_; }
  [[nodiscard]] const std::vector<Angle>& angles() const { return angles_; }
  [[nodiscard]] const std::vector<Dihedral>& dihedrals() const { return dihedrals_; }

  /// Sort and deduplicate the exclusion table. excluded() does this
  /// lazily, but the lazy path mutates shared state — callers that will
  /// query exclusions from multiple threads (the engine's parallel force
  /// slices) must finalize once, serially, first.
  void finalize() const;

  /// True if the nonbonded interaction between i and j is excluded.
  /// Thread-safe after finalize().
  [[nodiscard]] bool excluded(ParticleIndex i, ParticleIndex j) const;

  [[nodiscard]] double total_mass() const;
  [[nodiscard]] double total_charge() const;

 private:
  [[nodiscard]] static std::uint64_t pair_key(ParticleIndex i, ParticleIndex j);

  std::vector<Particle> particles_;
  std::vector<Bond> bonds_;
  std::vector<Angle> angles_;
  std::vector<Dihedral> dihedrals_;
  std::vector<std::uint64_t> exclusions_;  ///< sorted pair keys
  mutable bool exclusions_sorted_ = true;
};

}  // namespace spice::md
