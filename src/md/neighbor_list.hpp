#pragma once
// Verlet neighbour list built from a uniform cell grid (open boundaries —
// the translocation system is finite; there is no periodic box).
//
// The list stores all pairs within cutoff + skin and is rebuilt lazily:
// the engine calls maybe_rebuild() each step and the list only rebuilds
// when some particle has moved more than skin/2 since the last build, the
// standard displacement criterion.

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"

namespace spice::md {

class Topology;

struct NeighborPair {
  std::uint32_t i;
  std::uint32_t j;
};

class NeighborList {
 public:
  /// cutoff: interaction cutoff (Å); skin: extra shell (Å), > 0.
  NeighborList(double cutoff, double skin);

  /// Rebuild if any particle moved more than skin/2 since last build.
  /// Returns true if a rebuild happened.
  bool maybe_rebuild(std::span<const Vec3> positions, const Topology& topology);

  /// Unconditionally rebuild.
  void rebuild(std::span<const Vec3> positions, const Topology& topology);

  [[nodiscard]] const std::vector<NeighborPair>& pairs() const { return pairs_; }
  [[nodiscard]] double cutoff() const { return cutoff_; }
  [[nodiscard]] double skin() const { return skin_; }
  [[nodiscard]] std::size_t rebuild_count() const { return rebuilds_; }

 private:
  [[nodiscard]] bool needs_rebuild(std::span<const Vec3> positions) const;

  double cutoff_;
  double skin_;
  std::vector<NeighborPair> pairs_;
  std::vector<Vec3> reference_positions_;
  std::size_t rebuilds_ = 0;
};

}  // namespace spice::md
