#pragma once
// Cell-grid neighbour structure (open boundaries — the translocation
// system is finite; there is no periodic box).
//
// The grid bins particles into cubic cells of edge cutoff + skin and is
// rebuilt lazily: the engine calls maybe_rebuild() each step and the bins
// only rebuild when some particle has moved more than skin/2 since the
// last build, the standard displacement criterion.
//
// Two consumption modes:
//
//  * iterate-pairs-by-cell (primary): for_each_candidate_pair() walks the
//    half-stencil of occupied cells and yields raw (i, j) candidates for a
//    deterministic slice of the cell table. The nonbonded ForceKernel
//    consumes this directly at each rebuild epoch to refresh its
//    slice-local filtered pair segments — no global pair vector is
//    materialized or sorted on the hot path.
//
//  * materialized pair list (debug/validation): pairs() returns the
//    classic sorted, exclusion- and distance-filtered Verlet list. It is
//    built on demand (or eagerly when keep_pairs(true)); the legacy force
//    path and the brute-force equivalence tests use it.
//
// The slice partition and all iteration orders are pure functions of the
// sorted cell table, never of thread count — this is what lets the engine
// keep its bit-identical-across-thread-counts determinism contract.

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"

namespace spice::md {

class Topology;

struct NeighborPair {
  std::uint32_t i;
  std::uint32_t j;
};

class NeighborList {
 public:
  /// cutoff: interaction cutoff (Å); skin: extra shell (Å), > 0.
  NeighborList(double cutoff, double skin);

  /// Rebuild if any particle moved more than skin/2 since last build.
  /// Returns true if a rebuild happened.
  bool maybe_rebuild(std::span<const Vec3> positions, const Topology& topology);

  /// Unconditionally rebuild the cell bins (and, when keep_pairs() is on,
  /// the materialized pair list).
  void rebuild(std::span<const Vec3> positions, const Topology& topology);

  [[nodiscard]] double cutoff() const { return cutoff_; }
  [[nodiscard]] double skin() const { return skin_; }
  [[nodiscard]] std::size_t rebuild_count() const { return rebuilds_; }
  /// Positions the cell bins were built from (empty before the first
  /// build). The displacement criterion measures against these, and the
  /// engine checkpoints them: rebuilding from the same reference positions
  /// reproduces the cell table — and thus every downstream pair iteration
  /// order — bit-exactly, which is what makes restore() replay-exact.
  [[nodiscard]] std::span<const Vec3> reference_positions() const {
    return reference_positions_;
  }
  /// Monotonic build counter; changes exactly when the cell bins change.
  /// Kernels key their cached slice pair segments on this.
  [[nodiscard]] std::uint64_t epoch() const { return rebuilds_; }

  // --- iterate-pairs-by-cell (primary path) ----------------------------
  /// Number of occupied cells after the last build.
  [[nodiscard]] std::size_t cell_count() const { return cell_keys_.size(); }

  /// Invoke fn(i, j) for every candidate pair owned by `slice` of
  /// `slice_count`: slices own contiguous ranges of the sorted cell table;
  /// a cell owns its intra-cell pairs plus all pairs into its 13 forward
  /// half-stencil neighbours. No distance or exclusion filtering is
  /// applied — callers filter (and typically cache the result per epoch).
  template <typename F>
  void for_each_candidate_pair(std::size_t slice, std::size_t slice_count, F&& fn) const {
    const std::size_t cells = cell_keys_.size();
    if (cells == 0 || slice_count == 0) return;
    const std::size_t lo = cells * slice / slice_count;
    const std::size_t hi = cells * (slice + 1) / slice_count;
    for (std::size_t c = lo; c < hi; ++c) {
      const std::uint32_t begin = cell_begin_[c];
      const std::uint32_t end = cell_begin_[c + 1];
      // Intra-cell pairs, each once (particle order within a cell is
      // ascending by construction).
      for (std::uint32_t a = begin; a < end; ++a) {
        for (std::uint32_t b = a + 1; b < end; ++b) {
          fn(cell_particles_[a], cell_particles_[b]);
        }
      }
      // Cross pairs into the 13 forward neighbour cells.
      const auto& coord = cell_coords_[c];
      for (const auto& d : kHalfStencil) {
        const std::uint64_t key =
            key_of({coord[0] + d[0], coord[1] + d[1], coord[2] + d[2]});
        const auto it = std::lower_bound(cell_keys_.begin(), cell_keys_.end(), key);
        if (it == cell_keys_.end() || *it != key) continue;
        const auto nc = static_cast<std::size_t>(it - cell_keys_.begin());
        const std::uint32_t nbegin = cell_begin_[nc];
        const std::uint32_t nend = cell_begin_[nc + 1];
        for (std::uint32_t a = begin; a < end; ++a) {
          for (std::uint32_t b = nbegin; b < nend; ++b) {
            fn(cell_particles_[a], cell_particles_[b]);
          }
        }
      }
    }
  }

  // --- materialized pair list (debug/validation path) ------------------
  /// When on (the default, for standalone/diagnostic use), rebuild() also
  /// materializes the sorted filtered pair vector. The engine's kernel
  /// path turns this off; its legacy path turns it on.
  void set_keep_pairs(bool keep) { keep_pairs_ = keep; }
  [[nodiscard]] bool keep_pairs() const { return keep_pairs_; }

  /// The sorted (i < j), exclusion- and reach-filtered Verlet pair list
  /// from the last build. Only valid when keep_pairs() was on at build
  /// time (enforced).
  [[nodiscard]] const std::vector<NeighborPair>& pairs() const;

 private:
  [[nodiscard]] bool needs_rebuild(std::span<const Vec3> positions) const;
  [[nodiscard]] static std::array<std::int64_t, 3> cell_of(const Vec3& r, double cell);
  [[nodiscard]] static std::uint64_t key_of(const std::array<std::int64_t, 3>& c);
  void materialize_pairs(std::span<const Vec3> positions, const Topology& topology);

  /// Forward half of the 27-cell stencil: offsets lexicographically
  /// greater than (0,0,0) in (z, y, x) order — 13 entries, so every
  /// unordered cell pair is visited exactly once.
  static constexpr std::array<std::array<std::int64_t, 3>, 13> kHalfStencil = {{
      {1, 0, 0},
      {-1, 1, 0},  {0, 1, 0},  {1, 1, 0},
      {-1, -1, 1}, {0, -1, 1}, {1, -1, 1},
      {-1, 0, 1},  {0, 0, 1},  {1, 0, 1},
      {-1, 1, 1},  {0, 1, 1},  {1, 1, 1},
  }};

  double cutoff_;
  double skin_;
  bool keep_pairs_ = true;
  bool pairs_valid_ = false;

  // CSR cell table: sorted packed keys, integer coords, particle ids
  // grouped by cell (ascending within each cell).
  std::vector<std::uint64_t> cell_keys_;
  std::vector<std::array<std::int64_t, 3>> cell_coords_;
  std::vector<std::uint32_t> cell_begin_;
  std::vector<std::uint32_t> cell_particles_;

  std::vector<NeighborPair> pairs_;
  std::vector<Vec3> reference_positions_;
  std::size_t rebuilds_ = 0;
};

}  // namespace spice::md
