#include "md/topology.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spice::md {

ParticleIndex Topology::add_particle(const Particle& p) {
  SPICE_REQUIRE(p.mass > 0.0, "particle mass must be positive");
  SPICE_REQUIRE(p.radius >= 0.0, "particle radius must be non-negative");
  particles_.push_back(p);
  return static_cast<ParticleIndex>(particles_.size() - 1);
}

void Topology::add_bond(const Bond& b) {
  SPICE_REQUIRE(b.i < particles_.size() && b.j < particles_.size(), "bond index out of range");
  SPICE_REQUIRE(b.i != b.j, "bond must join distinct particles");
  SPICE_REQUIRE(b.k >= 0.0 && b.r0 >= 0.0, "bond parameters must be non-negative");
  bonds_.push_back(b);
  add_exclusion(b.i, b.j);
}

void Topology::add_angle(const Angle& a) {
  SPICE_REQUIRE(a.i < particles_.size() && a.j < particles_.size() && a.k < particles_.size(),
                "angle index out of range");
  SPICE_REQUIRE(a.i != a.j && a.j != a.k && a.i != a.k, "angle needs distinct particles");
  angles_.push_back(a);
  add_exclusion(a.i, a.k);
}

void Topology::add_dihedral(const Dihedral& d) {
  SPICE_REQUIRE(d.i < particles_.size() && d.j < particles_.size() &&
                    d.k < particles_.size() && d.l < particles_.size(),
                "dihedral index out of range");
  SPICE_REQUIRE(d.i != d.j && d.j != d.k && d.k != d.l && d.i != d.k && d.i != d.l &&
                    d.j != d.l,
                "dihedral needs four distinct particles");
  SPICE_REQUIRE(d.multiplicity >= 1, "dihedral multiplicity must be >= 1");
  dihedrals_.push_back(d);
  add_exclusion(d.i, d.l);
}

void Topology::add_exclusion(ParticleIndex i, ParticleIndex j) {
  SPICE_REQUIRE(i < particles_.size() && j < particles_.size(), "exclusion index out of range");
  SPICE_REQUIRE(i != j, "exclusion must name distinct particles");
  exclusions_.push_back(pair_key(i, j));
  exclusions_sorted_ = false;
}

void Topology::finalize() const {
  if (exclusions_sorted_) return;
  auto& mut = const_cast<std::vector<std::uint64_t>&>(exclusions_);
  std::sort(mut.begin(), mut.end());
  mut.erase(std::unique(mut.begin(), mut.end()), mut.end());
  exclusions_sorted_ = true;
}

bool Topology::excluded(ParticleIndex i, ParticleIndex j) const {
  finalize();
  return std::binary_search(exclusions_.begin(), exclusions_.end(), pair_key(i, j));
}

double Topology::total_mass() const {
  double m = 0.0;
  for (const auto& p : particles_) m += p.mass;
  return m;
}

double Topology::total_charge() const {
  double q = 0.0;
  for (const auto& p : particles_) q += p.charge;
  return q;
}

std::uint64_t Topology::pair_key(ParticleIndex i, ParticleIndex j) {
  const auto lo = std::min(i, j);
  const auto hi = std::max(i, j);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace spice::md
