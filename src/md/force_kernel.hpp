#pragma once
// Staged force-kernel pipeline over SoA state.
//
// One force evaluation runs in three phases:
//
//   1. begin_evaluation (serial)  — each kernel refreshes caches (e.g. the
//      nonbonded kernel notices a neighbour-list rebuild epoch).
//   2. evaluate_slice (parallel)  — the engine runs a FIXED number of
//      slices (independent of thread count); each slice owns a private
//      full-length ForceAccumulator and every kernel deposits a disjoint,
//      deterministic share of its work into it. ForceContributions (pore
//      potential, SMD springs, steering forces) ride the same slices via
//      disjoint particle ranges.
//   3. reduce (deterministic)     — per-slice buffers are summed in slice
//      order into the SystemState force arrays, and per-slice energies in
//      slice order into the EnergyBreakdown.
//
// Because the slice partition, the per-slice iteration order and the
// reduction order are all pure functions of (system, slice count), the
// resulting trajectory is bit-identical for any number of worker threads —
// the engine.hpp determinism contract.
//
// Accumulators track the touched index window so the workspace zeroes and
// reduces only what a slice actually wrote (bonded slices touch a narrow
// band of a chain topology; reducing 16 full arrays would swamp the win).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/vec3.hpp"
#include "md/forcefield.hpp"
#include "md/neighbor_list.hpp"
#include "md/simd.hpp"

namespace spice {
class ThreadPool;
}

namespace spice::md {

class SystemState;
class Topology;

/// Which EnergyBreakdown slot a kernel's energy belongs to.
enum class EnergyTerm : std::size_t { Bond = 0, Angle, Dihedral, Nonbonded, kCount };

/// Everything a kernel may read during one evaluation (immutable view).
/// state->positions() is synced by the engine before the parallel phase.
struct KernelContext {
  const SystemState* state = nullptr;
  const Topology* topology = nullptr;
  const NonbondedParams* nonbonded = nullptr;
  const NeighborList* neighbors = nullptr;
  double time = 0.0;
  std::size_t slice_count = 1;  ///< slices this evaluation will be split into
  /// SIMD level the engine resolved at construction. Level::Scalar runs the
  /// historical loops verbatim (the bit-exact golden path); vector levels
  /// run the packed batch kernels from md/simd.hpp.
  simd::Level simd = simd::Level::Scalar;
};

/// One slice's private force buffer with touched-window bookkeeping.
class ForceAccumulator {
 public:
  /// Add a force, noting the touched index.
  void add(std::size_t i, const Vec3& f) {
    forces_[i] += f;
    lo_ = std::min(lo_, i);
    hi_ = std::max(hi_, i + 1);
  }
  /// Raw indexed access for callers that declare their window via
  /// note_range() instead (the nonbonded inner loop).
  Vec3& operator[](std::size_t i) { return forces_[i]; }
  /// Declare [lo, hi) as touched without writing.
  void note_range(std::size_t lo, std::size_t hi) {
    if (lo >= hi) return;
    lo_ = std::min(lo_, lo);
    hi_ = std::max(hi_, hi);
  }
  /// Full-length view (absolute particle indexing) for ForceContributions.
  [[nodiscard]] std::span<Vec3> span() { return forces_; }
  [[nodiscard]] std::size_t window_lo() const { return lo_; }
  [[nodiscard]] std::size_t window_hi() const { return hi_; }

 private:
  friend class ForceWorkspace;
  std::vector<Vec3> forces_;
  std::size_t lo_ = 0;  ///< touched window [lo_, hi_)
  std::size_t hi_ = 0;
};

/// Per-slice accumulation buffers + per-slice energy slots shared by the
/// built-in kernels and all external ForceContributions.
class ForceWorkspace {
 public:
  /// Size for `particles`, `slices` and `external_terms` contributions.
  /// Cheap when the shape is unchanged.
  void configure(std::size_t particles, std::size_t slices, std::size_t external_terms);

  [[nodiscard]] std::size_t slice_count() const { return slices_.size(); }

  /// Hand out slice `s`, zeroed (only the previously touched window is
  /// cleared) with its energy slots reset. Called from the slice's own
  /// worker — zeroing is parallel.
  ForceAccumulator& acquire_slice(std::size_t s);

  [[nodiscard]] double& energy(std::size_t s, EnergyTerm term) {
    return term_energy_[s * static_cast<std::size_t>(EnergyTerm::kCount) +
                        static_cast<std::size_t>(term)];
  }
  [[nodiscard]] double& external_energy(std::size_t s, std::size_t contribution) {
    return external_energy_[s * external_terms_ + contribution];
  }

  /// Deterministic reduction: per particle, slice contributions are summed
  /// in ascending slice order (thread-count independent), written into the
  /// SoA force arrays. `pool` (may be null) parallelizes over particles.
  void reduce_forces(std::span<double> fx, std::span<double> fy, std::span<double> fz,
                     ThreadPool* pool) const;

  /// Per-term / per-contribution energies summed in slice order.
  [[nodiscard]] double reduced_energy(EnergyTerm term) const;
  [[nodiscard]] double reduced_external(std::size_t contribution) const;

 private:
  std::vector<ForceAccumulator> slices_;
  std::vector<double> term_energy_;      ///< [slice][term]
  std::vector<double> external_energy_;  ///< [slice][contribution]
  std::size_t particles_ = 0;
  std::size_t external_terms_ = 0;
};

/// A force term that evaluates in deterministic parallel slices.
class ForceKernel {
 public:
  virtual ~ForceKernel() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual EnergyTerm term() const = 0;

  /// Serial hook before the parallel phase (cache refresh etc.).
  virtual void begin_evaluation(const KernelContext& /*ctx*/) {}

  /// Deposit slice `slice` of `slice_count` disjoint shares of this
  /// kernel's work into `acc`; return that share's potential energy. The
  /// partition must depend only on (work, slice_count), never on threads.
  virtual double evaluate_slice(const KernelContext& ctx, std::size_t slice,
                                std::size_t slice_count, ForceAccumulator& acc) = 0;
};

// --- built-in kernels ----------------------------------------------------

/// Harmonic bonds, sliced over the bond array. Under a vector SIMD level
/// the (immutable) bond table is packed once into SoA index/parameter
/// streams with per-slice touched-particle windows; the scalar level keeps
/// the original AoS loop untouched.
class BondKernel final : public ForceKernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "bond"; }
  [[nodiscard]] EnergyTerm term() const override { return EnergyTerm::Bond; }
  void begin_evaluation(const KernelContext& ctx) override;
  double evaluate_slice(const KernelContext& ctx, std::size_t slice, std::size_t slice_count,
                        ForceAccumulator& acc) override;

 private:
  struct PackedBonds {
    std::vector<std::uint32_t> i, j;
    std::vector<double> k, r0;
    std::vector<std::size_t> lo, hi;  ///< per-slice touched particle windows
    std::size_t slice_count = 0;
    bool built = false;
  };
  PackedBonds packed_;
};

/// Harmonic angles, sliced over the angle array.
class AngleKernel final : public ForceKernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "angle"; }
  [[nodiscard]] EnergyTerm term() const override { return EnergyTerm::Angle; }
  double evaluate_slice(const KernelContext& ctx, std::size_t slice, std::size_t slice_count,
                        ForceAccumulator& acc) override;
};

/// Periodic torsions, sliced over the dihedral array.
class DihedralKernel final : public ForceKernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "dihedral"; }
  [[nodiscard]] EnergyTerm term() const override { return EnergyTerm::Dihedral; }
  double evaluate_slice(const KernelContext& ctx, std::size_t slice, std::size_t slice_count,
                        ForceAccumulator& acc) override;
};

/// WCA + Debye–Hückel nonbonded term. Consumes the neighbour list's
/// iterate-pairs-by-cell path directly: at each rebuild epoch every slice
/// refreshes its private exclusion- and reach-filtered pair segment (in
/// parallel, inside its own evaluate_slice call); between rebuilds the
/// per-step cost is a dense walk of those segments with the cutoff test
/// hoisted ahead of the expensive exp. The segment table itself is sized
/// in the serial begin_evaluation phase so the parallel slices only ever
/// touch their own element.
class NonbondedKernel final : public ForceKernel {
 public:
  [[nodiscard]] std::string_view name() const override { return "nonbonded"; }
  [[nodiscard]] EnergyTerm term() const override { return EnergyTerm::Nonbonded; }
  void begin_evaluation(const KernelContext& ctx) override;
  double evaluate_slice(const KernelContext& ctx, std::size_t slice, std::size_t slice_count,
                        ForceAccumulator& acc) override;

 private:
  struct SliceSegment {
    std::vector<NeighborPair> pairs;
    // Packed per-pair streams for the vector kernels (filled only when the
    // engine dispatches a non-scalar level): pair indices plus the derived
    // sigma_i+sigma_j and Coulomb prefactor, so the hot loop never chases
    // the per-particle parameter columns twice per pair.
    std::vector<std::uint32_t> pi, pj;
    std::vector<double> sigma, pref;
    std::vector<float> sig2f, pref_f;  // mixed-precision kernel streams
    std::size_t lo = 0;          ///< touched particle window
    std::size_t hi = 0;
    std::uint64_t epoch = ~0ULL; ///< neighbour-list build this derives from
  };
  void refresh_segment(const KernelContext& ctx, std::size_t slice, std::size_t slice_count);

  std::vector<SliceSegment> segments_;
  /// (x,y,z,0)-packed position mirror for the vector kernels, refreshed
  /// every evaluation in begin_evaluation (serial). Empty under Scalar.
  std::vector<double> xyzw_;
};

}  // namespace spice::md
