#pragma once
// Runtime-dispatched SIMD kernels for the MD hot loops.
//
// The nonbonded (WCA + Debye–Hückel) and bond inner loops account for
// nearly all of a force evaluation on the production pore system. This
// module provides batched implementations of both — an AVX2 path (4-wide
// doubles, FMA, vectorized exp) on x86-64, a NEON path (2-wide) on
// aarch64, and a scalar fallback whose floating-point operation sequence
// is IDENTICAL to the pre-SIMD loops, so forcing Level::Scalar reproduces
// historical trajectories bit-for-bit.
//
// Dispatch policy: the level is chosen ONCE per process (active()), from
// CPU feature detection, overridable with SPICE_SIMD=scalar|avx2|neon|
// native for CI matrices and debugging. Engines may also pin a level per
// instance via MdConfig::simd (Request::Scalar keeps goldens bit-exact
// regardless of the host CPU).
//
// Determinism: every kernel's iteration order, lane assignment and
// reduction order are pure functions of the batch — never of thread count
// — so SIMD trajectories are still bit-identical across thread counts;
// they differ from scalar trajectories only in last-bit rounding (the
// vectorized exp and the 4-lane energy accumulator round differently).
// The testkit tolerance ladder pins scalar↔SIMD agreement to norm bounds.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/vec3.hpp"

namespace spice::md::simd {

/// An implementation tier. Scalar is always available; the vector tiers
/// exist only on their ISA (supported() reports availability at runtime).
enum class Level { Scalar, AVX2, NEON };

/// What an engine asks for: Auto defers to the process-wide active()
/// level; the rest pin a specific tier (construction fails if the host
/// does not support it).
enum class Request { Auto, Scalar, AVX2, NEON };

[[nodiscard]] std::string_view name(Level level);

/// True when this CPU can execute `level`.
[[nodiscard]] bool supported(Level level);

/// Best level this CPU supports (ignores the environment override).
[[nodiscard]] Level detect();

/// Process-wide dispatch level, resolved once on first use:
/// SPICE_SIMD=scalar|avx2|neon|native when set (invalid values or an
/// unsupported forced tier are an error), otherwise detect().
[[nodiscard]] Level active();

/// Map an engine's request onto a concrete level. Auto → active();
/// anything else must be supported() (enforced).
[[nodiscard]] Level resolve(Request request);

// --- batched kernels -----------------------------------------------------
// Positions are SoA columns indexed by absolute particle id; per-pair /
// per-bond parameters are packed dense so the inner loop streams them.
// Forces accumulate into an absolute-indexed Vec3 buffer (a slice-private
// ForceAccumulator span); the return value is the batch potential energy.

/// One slice's nonbonded pair segment in packed form.
struct PairBatch {
  const double* x = nullptr;
  const double* y = nullptr;
  const double* z = nullptr;
  /// Positions packed (x,y,z,0) with stride 4, refreshed once per
  /// evaluation in the serial phase. The AVX2 kernel reads a pair's
  /// displacement with two 32-byte loads and a subtract instead of six
  /// gathers; x/y/z above serve the scalar tail and the NEON path.
  const double* xyzw = nullptr;
  const std::uint32_t* i = nullptr;  ///< pair first endpoints
  const std::uint32_t* j = nullptr;  ///< pair second endpoints
  const double* sigma = nullptr;     ///< per-pair WCA diameter σᵢ+σⱼ
  const double* pref = nullptr;      ///< per-pair (k_C/ε_r)·qᵢ·qⱼ
  /// Single-precision mirrors for the mixed-precision x86 kernel: (σᵢ+σⱼ)²
  /// and the Coulomb prefactor, packed once at neighbour-list rebuild.
  const float* sig2f = nullptr;
  const float* pref_f = nullptr;
  std::size_t count = 0;
};

/// Hoisted per-evaluation constants of the WCA + Debye–Hückel pair term
/// (same values the scalar kernel hoists).
struct NonbondedConsts {
  double cutoff2 = 0.0;         ///< r_c²
  double epsilon = 0.0;         ///< WCA ε
  double inv_lambda = 0.0;      ///< 1/λ_D
  double shift_per_pref = 0.0;  ///< e^{−r_c/λ}/r_c (DH cutoff shift / pref)
  double wca_lift = 0.0;        ///< 2^{1/3}: (2^{1/6}σ)² = wca_lift·σ²
};

/// One slice's harmonic-bond share in packed form.
struct BondBatch {
  const double* x = nullptr;
  const double* y = nullptr;
  const double* z = nullptr;
  const std::uint32_t* i = nullptr;
  const std::uint32_t* j = nullptr;
  const double* k = nullptr;   ///< spring constants
  const double* r0 = nullptr;  ///< rest lengths
  std::size_t count = 0;
};

using NonbondedFn = double (*)(const PairBatch&, const NonbondedConsts&, Vec3* acc);
using BondFn = double (*)(const BondBatch&, Vec3* acc);

/// Kernel entry points for `level` (must be supported()).
[[nodiscard]] NonbondedFn nonbonded_kernel(Level level);
[[nodiscard]] BondFn bond_kernel(Level level);

namespace detail {
// Per-tier implementations. The vector TUs are compiled with their ISA
// flags; on foreign architectures they compile to aborting stubs that the
// dispatch tables never hand out (supported() gates them).
double nonbonded_scalar(const PairBatch& batch, const NonbondedConsts& c, Vec3* acc);
double bond_scalar(const BondBatch& batch, Vec3* acc);
/// Scalar sub-range [begin, end): the vector kernels run this on their
/// remainder lanes so tails use the exact scalar operation sequence.
double nonbonded_scalar_range(const PairBatch& batch, const NonbondedConsts& c, Vec3* acc,
                              std::size_t begin, std::size_t end);
double bond_scalar_range(const BondBatch& batch, Vec3* acc, std::size_t begin,
                         std::size_t end);
double nonbonded_avx2(const PairBatch& batch, const NonbondedConsts& c, Vec3* acc);
double bond_avx2(const BondBatch& batch, Vec3* acc);
double nonbonded_neon(const PairBatch& batch, const NonbondedConsts& c, Vec3* acc);
double bond_neon(const BondBatch& batch, Vec3* acc);
/// Vectorized exp(x) test hook: out[k] = exp_level(in[k]). For the
/// accuracy regression in tests; Scalar maps to std::exp.
void exp_lanes(Level level, const double* in, double* out, std::size_t count);
void exp_lanes_avx2(const double* in, double* out, std::size_t count);
void exp_lanes_neon(const double* in, double* out, std::size_t count);
}  // namespace detail

}  // namespace spice::md::simd
