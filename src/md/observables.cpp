#include "md/observables.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "md/topology.hpp"

namespace spice::md {

Vec3 center_of_mass(std::span<const Vec3> positions, const Topology& topology,
                    std::span<const std::uint32_t> selection) {
  SPICE_REQUIRE(!selection.empty(), "centre of mass of empty selection");
  const auto& particles = topology.particles();
  Vec3 weighted;
  double mass = 0.0;
  for (const std::uint32_t i : selection) {
    SPICE_REQUIRE(i < positions.size(), "selection index out of range");
    weighted += positions[i] * particles[i].mass;
    mass += particles[i].mass;
  }
  SPICE_REQUIRE(mass > 0.0, "selection has zero mass");
  return weighted / mass;
}

Vec3 center_of_mass(std::span<const Vec3> positions, const Topology& topology) {
  std::vector<std::uint32_t> all(positions.size());
  std::iota(all.begin(), all.end(), 0);
  return center_of_mass(positions, topology, all);
}

double radius_of_gyration(std::span<const Vec3> positions, const Topology& topology,
                          std::span<const std::uint32_t> selection) {
  const Vec3 com = center_of_mass(positions, topology, selection);
  const auto& particles = topology.particles();
  double weighted = 0.0;
  double mass = 0.0;
  for (const std::uint32_t i : selection) {
    weighted += particles[i].mass * distance2(positions[i], com);
    mass += particles[i].mass;
  }
  return std::sqrt(weighted / mass);
}

double end_to_end_distance(std::span<const Vec3> positions,
                           std::span<const std::uint32_t> selection) {
  SPICE_REQUIRE(selection.size() >= 2, "end-to-end distance needs at least two particles");
  SPICE_REQUIRE(selection.front() < positions.size() && selection.back() < positions.size(),
                "selection index out of range");
  return distance(positions[selection.front()], positions[selection.back()]);
}

std::vector<BondExtension> bond_extension_profile(std::span<const Vec3> positions,
                                                  const Topology& topology) {
  std::vector<BondExtension> out;
  out.reserve(topology.bonds().size());
  for (const auto& b : topology.bonds()) {
    BondExtension e;
    e.length = distance(positions[b.i], positions[b.j]);
    e.rest_length = b.r0;
    e.mid_z = 0.5 * (positions[b.i].z + positions[b.j].z);
    out.push_back(e);
  }
  return out;
}

}  // namespace spice::md
