#include "md/forcefield.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace spice::md {

EnergyForce harmonic_bond(const Vec3& ri, const Vec3& rj, double k, double r0) {
  const Vec3 dr = ri - rj;
  const double r = dr.norm();
  if (r <= 0.0) return {};  // coincident sites exert no well-defined force
  const double x = r - r0;
  EnergyForce out;
  out.energy = k * x * x;
  // dU/dr = 2 k x; force on i = −dU/dr · r̂
  out.force_on_i = dr * (-2.0 * k * x / r);
  return out;
}

double harmonic_angle(const Vec3& ri, const Vec3& rj, const Vec3& rk, double k_theta,
                      double theta0, Vec3& fi, Vec3& fj, Vec3& fk) {
  const Vec3 rij = ri - rj;
  const Vec3 rkj = rk - rj;
  const double nij = rij.norm();
  const double nkj = rkj.norm();
  if (nij <= 0.0 || nkj <= 0.0) {
    fi = fj = fk = Vec3{};
    return 0.0;
  }
  double cos_t = dot(rij, rkj) / (nij * nkj);
  cos_t = std::clamp(cos_t, -1.0, 1.0);
  const double theta = std::acos(cos_t);
  const double dtheta = theta - theta0;
  const double energy = k_theta * dtheta * dtheta;

  // dU/dθ = 2 k dθ; F_i = −dU/dθ · dθ/dr_i with dθ/dr = −(1/sinθ) dcosθ/dr,
  // so F_i = +(2 k dθ / sinθ) · dcosθ/dr_i.
  const double sin_t = std::sqrt(std::max(1.0 - cos_t * cos_t, 1e-12));
  const double coeff = 2.0 * k_theta * dtheta / sin_t;
  const Vec3 di = (rkj / (nij * nkj) - rij * (cos_t / (nij * nij))) * coeff;
  const Vec3 dk = (rij / (nij * nkj) - rkj * (cos_t / (nkj * nkj))) * coeff;
  fi = di;
  fk = dk;
  fj = -(di + dk);
  return energy;
}

double periodic_dihedral(const Vec3& ri, const Vec3& rj, const Vec3& rk, const Vec3& rl,
                         double k_phi, int multiplicity, double delta, Vec3& fi, Vec3& fj,
                         Vec3& fk, Vec3& fl, double* phi_out) {
  fi = fj = fk = fl = Vec3{};
  const Vec3 b1 = rj - ri;
  const Vec3 b2 = rk - rj;
  const Vec3 b3 = rl - rk;
  const Vec3 n1 = cross(b1, b2);
  const Vec3 n2 = cross(b2, b3);
  const double n1sq = n1.norm2();
  const double n2sq = n2.norm2();
  const double b2len = b2.norm();
  if (n1sq < 1e-18 || n2sq < 1e-18 || b2len < 1e-12) {
    if (phi_out != nullptr) *phi_out = 0.0;
    return 0.0;  // collinear geometry: torsion undefined, zero force
  }
  // φ via atan2 keeps the full (−π, π] range and a stable derivative.
  const double x = dot(n1, n2);
  const double y = dot(cross(n1, n2), b2) / b2len;
  const double phi = std::atan2(y, x);
  if (phi_out != nullptr) *phi_out = phi;

  const double n = static_cast<double>(multiplicity);
  const double energy = k_phi * (1.0 + std::cos(n * phi - delta));
  const double dudphi = -k_phi * n * std::sin(n * phi - delta);

  // Blondel–Karplus force distribution (sign convention fixed against the
  // finite-difference tests: F = −∇U with φ = atan2((n1×n2)·b̂2, n1·n2)).
  fi = n1 * (dudphi * b2len / n1sq);
  fl = n2 * (-dudphi * b2len / n2sq);
  const double tj = dot(b1, b2) / (b2len * b2len);
  const double tk = dot(b3, b2) / (b2len * b2len);
  fj = -fi - fi * tj + fl * tk;
  fk = -fl + fi * tj - fl * tk;
  return energy;
}

EnergyForce wca_pair(const Vec3& ri, const Vec3& rj, double sigma, double epsilon) {
  const Vec3 dr = ri - rj;
  const double r2 = dr.norm2();
  const double rc2 = sigma * sigma * std::pow(2.0, 1.0 / 3.0);  // (2^{1/6} σ)²
  EnergyForce out;
  if (r2 >= rc2 || r2 <= 0.0) return out;
  const double s2 = sigma * sigma / r2;
  const double s6 = s2 * s2 * s2;
  const double s12 = s6 * s6;
  out.energy = 4.0 * epsilon * (s12 - s6) + epsilon;
  // F = −dU/dr r̂ = 24 ε (2 s12 − s6) / r² · dr
  out.force_on_i = dr * (24.0 * epsilon * (2.0 * s12 - s6) / r2);
  return out;
}

EnergyForce debye_huckel_pair(const Vec3& ri, const Vec3& rj, double qi, double qj,
                              const NonbondedParams& params) {
  EnergyForce out;
  if (qi == 0.0 || qj == 0.0) return out;
  const Vec3 dr = ri - rj;
  const double r = dr.norm();
  if (r >= params.cutoff || r <= 0.0) return out;
  const double pref = units::kCoulomb * qi * qj / params.dielectric;
  const double lambda = params.debye_length;
  const double u_r = pref * std::exp(-r / lambda) / r;
  const double u_cut = pref * std::exp(-params.cutoff / lambda) / params.cutoff;
  out.energy = u_r - u_cut;
  // −dU/dr = u_r (1/r + 1/λ)
  const double f_over_r = u_r * (1.0 / r + 1.0 / lambda) / r;
  out.force_on_i = dr * f_over_r;
  return out;
}

EnergyForce nonbonded_pair(const Vec3& ri, const Vec3& rj, double qi, double qj, double sigma,
                           const NonbondedParams& params) {
  EnergyForce wca = wca_pair(ri, rj, sigma, params.epsilon_wca);
  const EnergyForce dh = debye_huckel_pair(ri, rj, qi, qj, params);
  wca.energy += dh.energy;
  wca.force_on_i += dh.force_on_i;
  return wca;
}

}  // namespace spice::md
