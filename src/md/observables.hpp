#pragma once
// Structural observables over an MD state: centre of mass of a selection,
// radius of gyration, end-to-end distance, and the per-bond extension
// profile used to reproduce the Fig. 3 observation that the DNA strand
// stretches as it approaches the pore constriction.

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"

namespace spice::md {

class Topology;

/// Mass-weighted centre of mass of the selected particles.
/// Requires a non-empty selection with positive total mass.
[[nodiscard]] Vec3 center_of_mass(std::span<const Vec3> positions, const Topology& topology,
                                  std::span<const std::uint32_t> selection);

/// Centre of mass of all particles.
[[nodiscard]] Vec3 center_of_mass(std::span<const Vec3> positions, const Topology& topology);

/// Mass-weighted radius of gyration of the selection.
[[nodiscard]] double radius_of_gyration(std::span<const Vec3> positions, const Topology& topology,
                                        std::span<const std::uint32_t> selection);

/// Distance between the first and last particle of the selection (for a
/// chain selection this is the end-to-end distance).
[[nodiscard]] double end_to_end_distance(std::span<const Vec3> positions,
                                         std::span<const std::uint32_t> selection);

/// One entry per bond: the bond's current length, its rest length, and the
/// z-coordinate of the bond midpoint (so extension can be plotted vs the
/// pore axis).
struct BondExtension {
  double length = 0.0;
  double rest_length = 0.0;
  double mid_z = 0.0;
  [[nodiscard]] double strain() const {
    return rest_length > 0.0 ? (length - rest_length) / rest_length : 0.0;
  }
};

[[nodiscard]] std::vector<BondExtension> bond_extension_profile(std::span<const Vec3> positions,
                                                                const Topology& topology);

}  // namespace spice::md
