#pragma once
// The MD engine: owns topology, state, force evaluation and integration.
//
// This is the library's stand-in for NAMD (DESIGN.md §2). It supports the
// two integrators the reproduction needs (velocity Verlet for NVE
// validation, Langevin BAOAB for production), deterministic thread-parallel
// force evaluation, pluggable extra forces (pore potential, SMD spring,
// IMD steering) and checkpoint/restore/clone — the RealityGrid features
// the paper relies on for verification-and-validation runs.
//
// Dynamic state lives in a SystemState (structure-of-arrays; see
// system_state.hpp) and forces are produced by ForceKernels running in the
// staged slice pipeline of force_kernel.hpp. ForceContributions (the
// external layer: pore potential, SMD springs, steering) ride the same
// pipeline via disjoint particle ranges.
//
// Determinism contract: for a fixed seed and fixed build, trajectories are
// bit-identical regardless of the number of threads. The slice count is
// fixed (independent of thread count), slice partitions and reduction
// order are pure functions of the system, and the Langevin noise stream is
// keyed by (seed, particle, step), not by thread.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/vec3.hpp"
#include "md/force_contribution.hpp"
#include "md/force_kernel.hpp"
#include "md/forcefield.hpp"
#include "md/neighbor_list.hpp"
#include "md/system_state.hpp"
#include "md/topology.hpp"

namespace spice {
class ThreadPool;
}

namespace spice::md {

enum class IntegratorKind {
  VelocityVerlet,  ///< NVE; used for energy-conservation validation
  Langevin,        ///< BAOAB; production thermostatted dynamics
};

/// Which force-evaluation implementation the engine runs.
enum class ForcePath {
  /// Staged ForceKernel pipeline over SoA state with per-slice cell-grid
  /// pair segments — the production path.
  Kernels,
  /// The original serial-bonded + materialized-pair-list implementation,
  /// kept as a validation oracle and benchmark baseline.
  LegacyPairList,
};

struct MdConfig {
  double dt = 0.01;            ///< timestep, ps
  double temperature = 300.0;  ///< K (Langevin target)
  double friction = 1.0;       ///< Langevin γ, 1/ps
  IntegratorKind integrator = IntegratorKind::Langevin;
  std::uint64_t seed = 1;      ///< master seed for all stochastic terms
  std::size_t threads = 1;     ///< force-evaluation worker threads
  double neighbor_skin = 2.0;  ///< Verlet skin, Å
  ForcePath force_path = ForcePath::Kernels;
  /// SIMD dispatch request, resolved once at engine construction: Auto
  /// follows the process-wide level (SPICE_SIMD env override, else CPU
  /// detection); pinning Scalar selects the historical bit-exact loops.
  simd::Request simd = simd::Request::Auto;
};

/// One external contribution's share of the potential energy.
struct ExternalEnergy {
  std::string name;      ///< ForceContribution::name()
  double energy = 0.0;   ///< kcal/mol
};

/// Per-term potential-energy breakdown from the last force evaluation.
struct EnergyBreakdown {
  double bond = 0.0;
  double angle = 0.0;
  double dihedral = 0.0;
  double nonbonded = 0.0;
  double external = 0.0;  ///< sum over ForceContributions
  /// Per-contribution breakdown of `external`, in registration order
  /// (e.g. pore vs SMD spring energies, distinguishable in reports).
  std::vector<ExternalEnergy> external_terms;
  [[nodiscard]] double total() const {
    return bond + angle + dihedral + nonbonded + external;
  }
};

/// Opaque engine snapshot; restorable on an engine with the same topology.
struct Checkpoint {
  std::vector<std::uint8_t> bytes;
};

class Engine {
 public:
  Engine(Topology topology, NonbondedParams nonbonded, MdConfig config);
  /// Ensemble-replica variant: dynamic state lives in slot `replica` of
  /// `arena` (a shared replica-major slab) instead of a private allocation.
  /// Behaviour is otherwise identical to the three-argument constructor —
  /// EnsembleEngine relies on that equivalence for its bitwise-vs-
  /// standalone determinism contract.
  Engine(Topology topology, NonbondedParams nonbonded, MdConfig config,
         std::shared_ptr<StateArena> arena, std::size_t replica);
  ~Engine();

  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- setup -------------------------------------------------------------
  void set_positions(std::span<const Vec3> xs);
  void set_velocities(std::span<const Vec3> vs);
  /// Draw Maxwell–Boltzmann velocities at the given temperature.
  void initialize_velocities(double temperature_k);
  /// Register an extra force (pore potential, SMD spring, steering force).
  void add_contribution(std::shared_ptr<ForceContribution> contribution);

  /// Unregister a previously added contribution (no-op if absent). Needed
  /// when cloning: clone() shares contribution objects with the original,
  /// which is correct for stateless potentials (the pore) but wrong for
  /// stateful couplings (SMD springs, steering forces) — callers replace
  /// those on the clone.
  void remove_contribution(const ForceContribution* contribution);

  // --- running -----------------------------------------------------------
  /// Advance `n` timesteps.
  void step(std::size_t n = 1);

  // --- inspection ----------------------------------------------------------
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] const MdConfig& config() const { return config_; }
  [[nodiscard]] std::span<const Vec3> positions() const { return state_.positions(); }
  [[nodiscard]] std::span<const Vec3> velocities() const { return state_.velocities(); }
  [[nodiscard]] std::span<const Vec3> forces() const { return state_.forces(); }
  /// Direct access to the SoA state (kernels, benchmarks, tests).
  [[nodiscard]] const SystemState& state() const { return state_; }
  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] std::uint64_t step_count() const { return step_count_; }
  /// SIMD level this engine resolved at construction.
  [[nodiscard]] simd::Level simd_level() const { return simd_level_; }

  /// Recompute forces/energies for the current positions and return the
  /// breakdown (also refreshes forces()).
  const EnergyBreakdown& compute_energies();
  [[nodiscard]] const EnergyBreakdown& last_energies() const { return energies_; }
  [[nodiscard]] double kinetic_energy() const;
  /// Instantaneous kinetic temperature, K.
  [[nodiscard]] double instantaneous_temperature() const;
  [[nodiscard]] const NeighborList& neighbor_list() const { return *neighbor_list_; }

  // --- checkpoint / clone -------------------------------------------------
  /// Snapshot dynamic state (positions, velocities, time, step counter).
  [[nodiscard]] Checkpoint checkpoint() const;
  /// Restore a snapshot taken from an engine with identical topology.
  /// Also restores the stochastic seed recorded in the snapshot so that a
  /// restore + step() continuation is bit-identical to the original run.
  void restore(const Checkpoint& snapshot);

  /// Re-seed the stochastic streams (used after restore when a clone
  /// should explore an independent trajectory instead of replaying).
  void set_seed(std::uint64_t seed) { config_.seed = seed; }
  /// Clone this engine: same topology/parameters/state. `clone_seed`
  /// reseeds the stochastic stream so the clone explores an independent
  /// trajectory (the paper's clone-for-exploration use case); passing the
  /// original seed gives a bit-identical continuation.
  [[nodiscard]] Engine clone(std::uint64_t clone_seed) const;

  /// Generalized clone: the copy runs under `config` (caller-adjusted seed,
  /// thread count, …) and, when `arena` is non-null, binds its dynamic
  /// state to slot `replica` of that shared slab. Same contribution-sharing
  /// caveats as clone(). This is the EnsembleEngine construction path.
  [[nodiscard]] Engine clone_with(MdConfig config, std::shared_ptr<StateArena> arena,
                                  std::size_t replica) const;

 private:
  void ensure_forces_current();
  void evaluate_all_forces();
  void evaluate_forces_kernels();
  void evaluate_forces_legacy();
  double evaluate_nonbonded_legacy(std::span<Vec3> forces);
  void step_velocity_verlet();
  void step_langevin();
  [[nodiscard]] Vec3 langevin_noise(std::size_t particle) const;

  Topology topology_;
  NonbondedParams nonbonded_;
  MdConfig config_;
  simd::Level simd_level_ = simd::Level::Scalar;

  SystemState state_;
  EnergyBreakdown energies_;
  bool forces_current_ = false;

  double time_ = 0.0;
  std::uint64_t step_count_ = 0;

  std::unique_ptr<NeighborList> neighbor_list_;
  std::vector<std::shared_ptr<ForceContribution>> contributions_;
  std::unique_ptr<ThreadPool> pool_;

  // Kernel path.
  std::vector<std::unique_ptr<ForceKernel>> kernels_;
  ForceWorkspace workspace_;
  std::vector<double> external_base_;  ///< per-contribution begin_evaluation energies

  // Legacy path scratch.
  std::vector<Vec3> legacy_forces_;
  std::vector<std::vector<Vec3>> slice_forces_;
  std::vector<double> slice_energy_;
};

}  // namespace spice::md
