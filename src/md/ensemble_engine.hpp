#pragma once
// Batched ensemble MD: N replicas of one topology stepped together.
//
// SPICE campaigns run hundreds of independent SMD replicas per parameter
// combo; one Engine per replica repeats every per-engine allocation and
// scatters the hot arrays across the heap. EnsembleEngine keeps the full
// Engine abstraction per replica — own neighbour list (so each replica's
// rebuild decision tracks its OWN displacement since build), own force
// workspace, own contributions, own RNG seed — but binds all dynamic state
// into one shared replica-major StateArena slab (state_arena.hpp) and
// steps the replicas from a single thread pool.
//
// Determinism contract: replica r of an EnsembleEngine produces the
// bit-identical trajectory (and checkpoint bytes) of a standalone Engine
// constructed by master.clone(seeds[r]), for any ensemble thread count —
// replicas are data-disjoint and each one is stepped by exactly one worker
// with the engine-internal slice pipeline at threads = 1. The SIMD level
// is inherited from the master's config and resolved once; pinning
// Request::Scalar reproduces the historical loops bit-exactly.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "md/engine.hpp"

namespace spice {
class ThreadPool;
}

namespace spice::md {

struct EnsembleConfig {
  /// Workers stepping replicas (replica-level parallelism; each replica's
  /// internal pipeline runs serially to keep the ensemble oversubscription-
  /// free and bit-identical to standalone threads = 1 engines).
  std::size_t threads = 1;
};

class EnsembleEngine {
 public:
  /// Build `seeds.size()` replicas of `master`: same topology, parameters
  /// and current dynamic state; replica r reseeded with seeds[r]. The
  /// master's contribution list is shared (stateless potentials only —
  /// replace stateful couplings per replica, as with Engine::clone).
  EnsembleEngine(const Engine& master, std::span<const std::uint64_t> seeds,
                 EnsembleConfig config = {});
  ~EnsembleEngine();

  EnsembleEngine(EnsembleEngine&&) noexcept;
  EnsembleEngine& operator=(EnsembleEngine&&) noexcept;
  EnsembleEngine(const EnsembleEngine&) = delete;
  EnsembleEngine& operator=(const EnsembleEngine&) = delete;

  [[nodiscard]] std::size_t size() const { return replicas_.size(); }
  [[nodiscard]] Engine& replica(std::size_t r) { return replicas_[r]; }
  [[nodiscard]] const Engine& replica(std::size_t r) const { return replicas_[r]; }

  /// Register an extra force on replica `r` only (e.g. that replica's SMD
  /// spring). Must not be called while step_all is running.
  void add_contribution(std::size_t r, std::shared_ptr<ForceContribution> contribution);
  /// Unregister from replica `r` (no-op if absent).
  void remove_contribution(std::size_t r, const ForceContribution* contribution);

  /// Advance every replica `n` timesteps. Replicas are distributed over
  /// the ensemble workers in contiguous deterministic ranges.
  void step_all(std::size_t n = 1);

  /// Snapshot replica `r` (byte-compatible with standalone Engine
  /// checkpoints — same format v2).
  [[nodiscard]] Checkpoint checkpoint(std::size_t r) const {
    return replicas_[r].checkpoint();
  }

 private:
  std::vector<Engine> replicas_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace spice::md
