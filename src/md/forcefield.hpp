#pragma once
// Force-field terms for the coarse-grained model.
//
// Bonded terms:   harmonic bond, harmonic angle.
// Nonbonded:      WCA (purely repulsive Lennard-Jones) excluded volume,
//                 Debye–Hückel screened electrostatics (implicit solvent +
//                 implicit counter-ions — the substitution for explicit
//                 water/ions in the paper's all-atom system).
//
// Every term provides energy AND force so that force = −∇U can be verified
// by finite differences in the test suite.

#include <span>

#include "common/vec3.hpp"

namespace spice::md {

/// Parameters for the nonbonded interaction model.
struct NonbondedParams {
  double epsilon_wca = 0.5;   ///< WCA well depth, kcal/mol
  double dielectric = 80.0;   ///< relative dielectric constant
  double debye_length = 7.8;  ///< Debye screening length, Å (~150 mM salt)
  double cutoff = 18.0;       ///< nonbonded cutoff, Å
};

/// Result of a pairwise/bonded term evaluation.
struct EnergyForce {
  double energy = 0.0;
  Vec3 force_on_i;  ///< force on the first particle; reaction is −force_on_i
};

/// Harmonic bond U = k (r − r0)² between positions ri, rj.
[[nodiscard]] EnergyForce harmonic_bond(const Vec3& ri, const Vec3& rj, double k, double r0);

/// Harmonic angle U = k_theta (θ − θ0)² for the triple (ri, rj, rk) with
/// apex at rj. Forces for all three sites are returned via out-params.
double harmonic_angle(const Vec3& ri, const Vec3& rj, const Vec3& rk, double k_theta,
                      double theta0, Vec3& fi, Vec3& fj, Vec3& fk);

/// Periodic torsion U = k_phi (1 + cos(n φ − δ)) over the i-j-k-l chain;
/// forces on all four sites via out-params (Blondel–Karplus geometry).
/// Returns the energy; `phi_out`, if non-null, receives the dihedral angle.
double periodic_dihedral(const Vec3& ri, const Vec3& rj, const Vec3& rk, const Vec3& rl,
                         double k_phi, int multiplicity, double delta, Vec3& fi, Vec3& fj,
                         Vec3& fk, Vec3& fl, double* phi_out = nullptr);

/// WCA pair interaction with sigma = radius_i + radius_j.
/// Zero beyond 2^(1/6)·sigma.
[[nodiscard]] EnergyForce wca_pair(const Vec3& ri, const Vec3& rj, double sigma, double epsilon);

/// Debye–Hückel pair: U = C qi qj exp(−r/λ) / (ε r), energy-shifted so that
/// U(cutoff) = 0 (keeps the potential continuous at the cutoff).
[[nodiscard]] EnergyForce debye_huckel_pair(const Vec3& ri, const Vec3& rj, double qi, double qj,
                                            const NonbondedParams& params);

/// Full nonbonded pair (WCA + Debye–Hückel) used by the engine inner loop.
[[nodiscard]] EnergyForce nonbonded_pair(const Vec3& ri, const Vec3& rj, double qi, double qj,
                                         double sigma, const NonbondedParams& params);

}  // namespace spice::md
