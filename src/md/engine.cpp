#include "md/engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/serialize.hpp"
#include "common/units.hpp"

namespace spice::md {

namespace {
/// kcal/mol per amu·(Å/ps)²: converts m·v² to energy.
constexpr double kMv2ToKcalMol = 0.0023900574;
/// Å/ps² per (kcal/mol/Å)/amu: converts F/m to acceleration.
constexpr double kForceOverMassToAcc = 1.0 / kMv2ToKcalMol;
/// Fixed slice count for the nonbonded reduction — independent of thread
/// count so the summation order (and thus the trajectory) never changes.
constexpr std::size_t kForceSlices = 16;

constexpr std::uint32_t kCheckpointMagic = 0x53504943;  // "SPIC"
constexpr std::uint32_t kCheckpointVersion = 1;
}  // namespace

Engine::Engine(Topology topology, NonbondedParams nonbonded, MdConfig config)
    : topology_(std::move(topology)), nonbonded_(nonbonded), config_(config) {
  SPICE_REQUIRE(config_.dt > 0.0, "timestep must be positive");
  SPICE_REQUIRE(config_.temperature >= 0.0, "temperature must be non-negative");
  SPICE_REQUIRE(config_.friction > 0.0, "Langevin friction must be positive");
  const std::size_t n = topology_.particle_count();
  SPICE_REQUIRE(n > 0, "engine needs at least one particle");
  positions_.resize(n);
  velocities_.resize(n);
  forces_.resize(n);
  inv_mass_.reserve(n);
  for (const auto& p : topology_.particles()) inv_mass_.push_back(1.0 / p.mass);
  neighbor_list_ = std::make_unique<NeighborList>(nonbonded_.cutoff, config_.neighbor_skin);
  if (config_.threads > 1) pool_ = std::make_unique<ThreadPool>(config_.threads);
  slice_forces_.resize(kForceSlices);
  slice_energy_.resize(kForceSlices);
}

Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

void Engine::set_positions(std::span<const Vec3> xs) {
  SPICE_REQUIRE(xs.size() == positions_.size(), "position count mismatch");
  positions_.assign(xs.begin(), xs.end());
  forces_current_ = false;
}

void Engine::set_velocities(std::span<const Vec3> vs) {
  SPICE_REQUIRE(vs.size() == velocities_.size(), "velocity count mismatch");
  velocities_.assign(vs.begin(), vs.end());
}

void Engine::initialize_velocities(double temperature_k) {
  SPICE_REQUIRE(temperature_k >= 0.0, "temperature must be non-negative");
  const auto& particles = topology_.particles();
  for (std::size_t i = 0; i < velocities_.size(); ++i) {
    Rng rng = Rng::stream(config_.seed, 0x76656c /*"vel"*/, i);
    const double sigma =
        std::sqrt(units::kB * temperature_k / (particles[i].mass * kMv2ToKcalMol));
    velocities_[i] = {rng.gaussian(0.0, sigma), rng.gaussian(0.0, sigma),
                      rng.gaussian(0.0, sigma)};
  }
}

void Engine::add_contribution(std::shared_ptr<ForceContribution> contribution) {
  SPICE_REQUIRE(contribution != nullptr, "null force contribution");
  contributions_.push_back(std::move(contribution));
  forces_current_ = false;
}

void Engine::remove_contribution(const ForceContribution* contribution) {
  std::erase_if(contributions_, [contribution](const std::shared_ptr<ForceContribution>& c) {
    return c.get() == contribution;
  });
  forces_current_ = false;
}

double Engine::evaluate_nonbonded(std::span<Vec3> forces) {
  neighbor_list_->maybe_rebuild(positions_, topology_);
  const auto& pairs = neighbor_list_->pairs();
  const auto& particles = topology_.particles();
  if (pairs.empty()) return 0.0;

  const std::size_t slices = std::min<std::size_t>(kForceSlices, pairs.size());
  for (std::size_t s = 0; s < slices; ++s) {
    slice_forces_[s].assign(forces.size(), Vec3{});
    slice_energy_[s] = 0.0;
  }

  auto run_slice = [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      auto& local = slice_forces_[s];
      double energy = 0.0;
      const std::size_t lo = pairs.size() * s / slices;
      const std::size_t hi = pairs.size() * (s + 1) / slices;
      for (std::size_t p = lo; p < hi; ++p) {
        const auto [i, j] = pairs[p];
        const double sigma = particles[i].radius + particles[j].radius;
        const EnergyForce ef = nonbonded_pair(positions_[i], positions_[j], particles[i].charge,
                                              particles[j].charge, sigma, nonbonded_);
        energy += ef.energy;
        local[i] += ef.force_on_i;
        local[j] -= ef.force_on_i;
      }
      slice_energy_[s] = energy;
    }
  };

  if (pool_) {
    pool_->parallel_for(slices, run_slice);
  } else {
    run_slice(0, slices);
  }

  // Deterministic reduction in slice order.
  double energy = 0.0;
  for (std::size_t s = 0; s < slices; ++s) {
    energy += slice_energy_[s];
    const auto& local = slice_forces_[s];
    for (std::size_t i = 0; i < forces.size(); ++i) forces[i] += local[i];
  }
  return energy;
}

void Engine::evaluate_all_forces() {
  std::fill(forces_.begin(), forces_.end(), Vec3{});
  energies_ = EnergyBreakdown{};

  for (const auto& b : topology_.bonds()) {
    const EnergyForce ef = harmonic_bond(positions_[b.i], positions_[b.j], b.k, b.r0);
    energies_.bond += ef.energy;
    forces_[b.i] += ef.force_on_i;
    forces_[b.j] -= ef.force_on_i;
  }
  for (const auto& a : topology_.angles()) {
    Vec3 fi;
    Vec3 fj;
    Vec3 fk;
    energies_.angle +=
        harmonic_angle(positions_[a.i], positions_[a.j], positions_[a.k], a.k_theta, a.theta0,
                       fi, fj, fk);
    forces_[a.i] += fi;
    forces_[a.j] += fj;
    forces_[a.k] += fk;
  }
  for (const auto& d : topology_.dihedrals()) {
    Vec3 fi;
    Vec3 fj;
    Vec3 fk;
    Vec3 fl;
    energies_.dihedral +=
        periodic_dihedral(positions_[d.i], positions_[d.j], positions_[d.k], positions_[d.l],
                          d.k_phi, d.multiplicity, d.delta, fi, fj, fk, fl);
    forces_[d.i] += fi;
    forces_[d.j] += fj;
    forces_[d.k] += fk;
    forces_[d.l] += fl;
  }
  energies_.nonbonded = evaluate_nonbonded(forces_);
  for (const auto& c : contributions_) {
    energies_.external += c->add_forces(positions_, topology_, time_, forces_);
  }
  forces_current_ = true;
}

void Engine::ensure_forces_current() {
  if (!forces_current_) evaluate_all_forces();
}

const EnergyBreakdown& Engine::compute_energies() {
  evaluate_all_forces();
  return energies_;
}

double Engine::kinetic_energy() const {
  const auto& particles = topology_.particles();
  double mv2 = 0.0;
  for (std::size_t i = 0; i < velocities_.size(); ++i) {
    mv2 += particles[i].mass * velocities_[i].norm2();
  }
  return 0.5 * mv2 * kMv2ToKcalMol;
}

double Engine::instantaneous_temperature() const {
  const auto dof = static_cast<double>(3 * velocities_.size());
  return 2.0 * kinetic_energy() / (dof * units::kB);
}

void Engine::step(std::size_t n) {
  for (std::size_t s = 0; s < n; ++s) {
    switch (config_.integrator) {
      case IntegratorKind::VelocityVerlet:
        step_velocity_verlet();
        break;
      case IntegratorKind::Langevin:
        step_langevin();
        break;
    }
    ++step_count_;
    SPICE_ENSURE(time_ == static_cast<double>(step_count_) * config_.dt,
                 "integrator failed to advance time");
  }
}

void Engine::step_velocity_verlet() {
  ensure_forces_current();
  const double dt = config_.dt;
  const std::size_t n = positions_.size();
  for (std::size_t i = 0; i < n; ++i) {
    velocities_[i] += forces_[i] * (0.5 * dt * inv_mass_[i] * kForceOverMassToAcc);
    positions_[i] += velocities_[i] * dt;
  }
  // Forces for the closing half-kick belong to time t + dt (this matters
  // for time-dependent potentials such as the moving SMD anchor).
  time_ = static_cast<double>(step_count_ + 1) * dt;
  evaluate_all_forces();
  for (std::size_t i = 0; i < n; ++i) {
    velocities_[i] += forces_[i] * (0.5 * dt * inv_mass_[i] * kForceOverMassToAcc);
  }
}

Vec3 Engine::langevin_noise(std::size_t particle) const {
  Rng rng = Rng::stream(config_.seed, 0x6c616e /*"lan"*/, particle, step_count_);
  return {rng.gaussian(), rng.gaussian(), rng.gaussian()};
}

void Engine::step_langevin() {
  // BAOAB splitting (Leimkuhler–Matthews): B half-kick, A half-drift,
  // O Ornstein–Uhlenbeck, A half-drift, B half-kick.
  ensure_forces_current();
  const double dt = config_.dt;
  const double c1 = std::exp(-config_.friction * dt);
  const double kbt = units::kB * config_.temperature;
  const std::size_t n = positions_.size();
  const auto& particles = topology_.particles();

  for (std::size_t i = 0; i < n; ++i) {
    velocities_[i] += forces_[i] * (0.5 * dt * inv_mass_[i] * kForceOverMassToAcc);
    positions_[i] += velocities_[i] * (0.5 * dt);
    const double sigma = std::sqrt((1.0 - c1 * c1) * kbt / (particles[i].mass * kMv2ToKcalMol));
    velocities_[i] = velocities_[i] * c1 + langevin_noise(i) * sigma;
    positions_[i] += velocities_[i] * (0.5 * dt);
  }
  time_ = static_cast<double>(step_count_ + 1) * dt;
  evaluate_all_forces();
  for (std::size_t i = 0; i < n; ++i) {
    velocities_[i] += forces_[i] * (0.5 * dt * inv_mass_[i] * kForceOverMassToAcc);
  }
}

Checkpoint Engine::checkpoint() const {
  BinaryWriter w;
  w.write_u32(kCheckpointMagic);
  w.write_u32(kCheckpointVersion);
  w.write_u64(topology_.particle_count());
  w.write_u64(step_count_);
  w.write_f64(time_);
  w.write_u64(config_.seed);
  w.write_vec3_span(positions_);
  w.write_vec3_span(velocities_);
  return Checkpoint{w.take()};
}

void Engine::restore(const Checkpoint& snapshot) {
  BinaryReader r(snapshot.bytes);
  SPICE_REQUIRE(r.read_u32() == kCheckpointMagic, "not a SPICE checkpoint");
  SPICE_REQUIRE(r.read_u32() == kCheckpointVersion, "unsupported checkpoint version");
  const std::uint64_t n = r.read_u64();
  SPICE_REQUIRE(n == topology_.particle_count(), "checkpoint particle count mismatch");
  step_count_ = r.read_u64();
  time_ = r.read_f64();
  config_.seed = r.read_u64();
  positions_ = r.read_vec3_vector();
  velocities_ = r.read_vec3_vector();
  SPICE_ENSURE(positions_.size() == n && velocities_.size() == n, "corrupt checkpoint");
  forces_current_ = false;
}

Engine Engine::clone(std::uint64_t clone_seed) const {
  MdConfig cfg = config_;
  cfg.seed = clone_seed;
  Engine copy(topology_, nonbonded_, cfg);
  copy.positions_ = positions_;
  copy.velocities_ = velocities_;
  copy.time_ = time_;
  copy.step_count_ = step_count_;
  copy.contributions_ = contributions_;
  return copy;
}

}  // namespace spice::md
