#include "md/engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/serialize.hpp"
#include "common/units.hpp"
#include "obs/obs.hpp"

namespace spice::md {

namespace {
/// kcal/mol per amu·(Å/ps)²: converts m·v² to energy. Shared with the
/// analytic references in common/units so the integrator and the physics
/// invariant suite can never disagree on the kinetic unit.
constexpr double kMv2ToKcalMol = units::kMv2ToKcalMol;
/// Å/ps² per (kcal/mol/Å)/amu: converts F/m to acceleration.
constexpr double kForceOverMassToAcc = units::kForceOverMassToAcc;
/// Fixed slice count for the force pipeline — independent of thread count
/// so the summation order (and thus the trajectory) never changes.
constexpr std::size_t kForceSlices = 16;

constexpr std::uint32_t kCheckpointMagic = 0x53504943;  // "SPIC"
constexpr std::uint32_t kCheckpointVersion = 2;
}  // namespace

Engine::Engine(Topology topology, NonbondedParams nonbonded, MdConfig config)
    : Engine(std::move(topology), nonbonded, config, nullptr, 0) {}

Engine::Engine(Topology topology, NonbondedParams nonbonded, MdConfig config,
               std::shared_ptr<StateArena> arena, std::size_t replica)
    : topology_(std::move(topology)), nonbonded_(nonbonded), config_(config) {
  SPICE_REQUIRE(config_.dt > 0.0, "timestep must be positive");
  SPICE_REQUIRE(config_.temperature >= 0.0, "temperature must be non-negative");
  SPICE_REQUIRE(config_.friction > 0.0, "Langevin friction must be positive");
  const std::size_t n = topology_.particle_count();
  SPICE_REQUIRE(n > 0, "engine needs at least one particle");
  simd_level_ = simd::resolve(config_.simd);
  // Exclusions must be sorted before kernels query them from parallel
  // slices (Topology::finalize documents the contract).
  topology_.finalize();
  if (arena != nullptr) {
    state_.reset(topology_, std::move(arena), replica);
  } else {
    state_.reset(topology_);
  }
  neighbor_list_ = std::make_unique<NeighborList>(nonbonded_.cutoff, config_.neighbor_skin);
  // The kernel path consumes the cell grid directly; the materialized pair
  // list is only needed by the legacy/validation path.
  neighbor_list_->set_keep_pairs(config_.force_path == ForcePath::LegacyPairList);
  if (config_.threads > 1) pool_ = std::make_unique<ThreadPool>(config_.threads);
  kernels_.push_back(std::make_unique<BondKernel>());
  kernels_.push_back(std::make_unique<AngleKernel>());
  kernels_.push_back(std::make_unique<DihedralKernel>());
  kernels_.push_back(std::make_unique<NonbondedKernel>());
  slice_forces_.resize(kForceSlices);
  slice_energy_.resize(kForceSlices);
}

Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

void Engine::set_positions(std::span<const Vec3> xs) {
  SPICE_REQUIRE(xs.size() == state_.size(), "position count mismatch");
  state_.set_positions(xs);
  forces_current_ = false;
}

void Engine::set_velocities(std::span<const Vec3> vs) {
  SPICE_REQUIRE(vs.size() == state_.size(), "velocity count mismatch");
  state_.set_velocities(vs);
}

void Engine::initialize_velocities(double temperature_k) {
  SPICE_REQUIRE(temperature_k >= 0.0, "temperature must be non-negative");
  const auto mass = state_.mass();
  auto vx = state_.vx();
  auto vy = state_.vy();
  auto vz = state_.vz();
  for (std::size_t i = 0; i < state_.size(); ++i) {
    Rng rng = Rng::stream(config_.seed, 0x76656c /*"vel"*/, i);
    const double sigma = std::sqrt(units::kB * temperature_k / (mass[i] * kMv2ToKcalMol));
    vx[i] = rng.gaussian(0.0, sigma);
    vy[i] = rng.gaussian(0.0, sigma);
    vz[i] = rng.gaussian(0.0, sigma);
  }
}

void Engine::add_contribution(std::shared_ptr<ForceContribution> contribution) {
  SPICE_REQUIRE(contribution != nullptr, "null force contribution");
  contributions_.push_back(std::move(contribution));
  forces_current_ = false;
}

void Engine::remove_contribution(const ForceContribution* contribution) {
  std::erase_if(contributions_, [contribution](const std::shared_ptr<ForceContribution>& c) {
    return c.get() == contribution;
  });
  forces_current_ = false;
}

void Engine::evaluate_forces_kernels() {
  SPICE_TRACE_SCOPE_CAT("md.force_eval", "md");
  SPICE_RECORD_SPAN("md.force_eval");
  {
    static obs::Counter& evals = obs::metrics().counter("md.engine.force_evals");
    evals.add(1);
  }
  // Phase boundaries are timestamped only while a tracer is installed; a
  // clock read never touches simulation state, so trajectories stay
  // bit-identical with tracing on (test_md_determinism locks this in).
  obs::Tracer* tracer = obs::tracing_on() ? obs::process_tracer() : nullptr;
  double phase_start_us = tracer != nullptr ? obs::now_us() : 0.0;
  const auto end_phase = [&](const char* name) {
    if (tracer == nullptr) return;
    const double now = obs::now_us();
    tracer->complete(name, "md", phase_start_us, now - phase_start_us, obs::thread_track());
    phase_start_us = now;
  };

  // Serial phase: sync the AoS position view once (kernels and
  // contributions read it concurrently afterwards), refresh the neighbour
  // list, run per-kernel and per-contribution serial hooks.
  const auto xs = state_.positions();
  neighbor_list_->maybe_rebuild(xs, topology_);

  const KernelContext ctx{&state_,  &topology_,   &nonbonded_, neighbor_list_.get(),
                          time_,    kForceSlices, simd_level_};
  for (const auto& k : kernels_) k->begin_evaluation(ctx);

  const std::size_t n = state_.size();
  workspace_.configure(n, kForceSlices, contributions_.size());
  external_base_.assign(contributions_.size(), 0.0);
  for (std::size_t c = 0; c < contributions_.size(); ++c) {
    external_base_[c] = contributions_[c]->begin_evaluation(xs, topology_, time_);
  }
  end_phase("md.force_eval.prepare");

  // Per-kernel time attribution is opt-in (obs detail mode): 16 slices × 4
  // kernels × 2 clock reads per evaluation is measurable on small systems,
  // so the base tracing tier skips it.
  const bool detail = obs::detail_on();
  std::vector<obs::Counter*> kernel_ns;
  if (detail) {
    kernel_ns.reserve(kernels_.size());
    for (const auto& k : kernels_) {
      kernel_ns.push_back(
          &obs::metrics().counter("md.kernel." + std::string(k->name()) + ".ns"));
    }
  }

  // Parallel phase: fixed slice count regardless of thread count.
  auto run_slices = [&](std::size_t begin, std::size_t end) {
    // Chunk-local per-kernel time, flushed once per chunk so the counters
    // see one add per kernel instead of one per slice.
    std::array<double, 8> chunk_kernel_us{};
    for (std::size_t s = begin; s < end; ++s) {
      ForceAccumulator& acc = workspace_.acquire_slice(s);
      for (std::size_t ki = 0; ki < kernels_.size(); ++ki) {
        const double k0 = detail ? obs::now_us() : 0.0;
        workspace_.energy(s, kernels_[ki]->term()) +=
            kernels_[ki]->evaluate_slice(ctx, s, kForceSlices, acc);
        if (detail && ki < chunk_kernel_us.size()) {
          chunk_kernel_us[ki] += obs::now_us() - k0;
        }
      }
      if (!contributions_.empty()) {
        const std::size_t lo = n * s / kForceSlices;
        const std::size_t hi = n * (s + 1) / kForceSlices;
        acc.note_range(lo, hi);
        for (std::size_t c = 0; c < contributions_.size(); ++c) {
          workspace_.external_energy(s, c) +=
              contributions_[c]->accumulate_range(xs, topology_, time_, lo, hi, acc.span());
        }
      }
    }
    if (detail) {
      for (std::size_t ki = 0; ki < kernel_ns.size() && ki < chunk_kernel_us.size(); ++ki) {
        kernel_ns[ki]->add(static_cast<std::uint64_t>(chunk_kernel_us[ki] * 1e3));
      }
    }
  };
  if (pool_) {
    pool_->parallel_for(kForceSlices, run_slices);
  } else {
    run_slices(0, kForceSlices);
  }
  end_phase("md.force_eval.parallel");

  // Deterministic reduction: ascending slice order per particle / term.
  workspace_.reduce_forces(state_.fx(), state_.fy(), state_.fz(), pool_.get());
  end_phase("md.force_eval.reduce");

  energies_ = EnergyBreakdown{};
  energies_.bond = workspace_.reduced_energy(EnergyTerm::Bond);
  energies_.angle = workspace_.reduced_energy(EnergyTerm::Angle);
  energies_.dihedral = workspace_.reduced_energy(EnergyTerm::Dihedral);
  energies_.nonbonded = workspace_.reduced_energy(EnergyTerm::Nonbonded);
  energies_.external_terms.reserve(contributions_.size());
  for (std::size_t c = 0; c < contributions_.size(); ++c) {
    const double e = external_base_[c] + workspace_.reduced_external(c);
    energies_.external += e;
    energies_.external_terms.push_back({contributions_[c]->name(), e});
  }
}

double Engine::evaluate_nonbonded_legacy(std::span<Vec3> forces) {
  const auto xs = state_.positions();
  neighbor_list_->maybe_rebuild(xs, topology_);
  const auto& pairs = neighbor_list_->pairs();
  const auto& particles = topology_.particles();
  if (pairs.empty()) return 0.0;

  const std::size_t slices = std::min<std::size_t>(kForceSlices, pairs.size());
  for (std::size_t s = 0; s < slices; ++s) {
    slice_forces_[s].assign(forces.size(), Vec3{});
    slice_energy_[s] = 0.0;
  }

  auto run_slice = [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      auto& local = slice_forces_[s];
      double energy = 0.0;
      const std::size_t lo = pairs.size() * s / slices;
      const std::size_t hi = pairs.size() * (s + 1) / slices;
      for (std::size_t p = lo; p < hi; ++p) {
        const auto [i, j] = pairs[p];
        const double sigma = particles[i].radius + particles[j].radius;
        const EnergyForce ef = nonbonded_pair(xs[i], xs[j], particles[i].charge,
                                              particles[j].charge, sigma, nonbonded_);
        energy += ef.energy;
        local[i] += ef.force_on_i;
        local[j] -= ef.force_on_i;
      }
      slice_energy_[s] = energy;
    }
  };

  if (pool_) {
    pool_->parallel_for(slices, run_slice);
  } else {
    run_slice(0, slices);
  }

  // Deterministic reduction in slice order.
  double energy = 0.0;
  for (std::size_t s = 0; s < slices; ++s) {
    energy += slice_energy_[s];
    const auto& local = slice_forces_[s];
    for (std::size_t i = 0; i < forces.size(); ++i) forces[i] += local[i];
  }
  return energy;
}

void Engine::evaluate_forces_legacy() {
  const auto xs = state_.positions();
  legacy_forces_.assign(state_.size(), Vec3{});
  energies_ = EnergyBreakdown{};

  for (const auto& b : topology_.bonds()) {
    const EnergyForce ef = harmonic_bond(xs[b.i], xs[b.j], b.k, b.r0);
    energies_.bond += ef.energy;
    legacy_forces_[b.i] += ef.force_on_i;
    legacy_forces_[b.j] -= ef.force_on_i;
  }
  for (const auto& a : topology_.angles()) {
    Vec3 fi;
    Vec3 fj;
    Vec3 fk;
    energies_.angle +=
        harmonic_angle(xs[a.i], xs[a.j], xs[a.k], a.k_theta, a.theta0, fi, fj, fk);
    legacy_forces_[a.i] += fi;
    legacy_forces_[a.j] += fj;
    legacy_forces_[a.k] += fk;
  }
  for (const auto& d : topology_.dihedrals()) {
    Vec3 fi;
    Vec3 fj;
    Vec3 fk;
    Vec3 fl;
    energies_.dihedral += periodic_dihedral(xs[d.i], xs[d.j], xs[d.k], xs[d.l], d.k_phi,
                                            d.multiplicity, d.delta, fi, fj, fk, fl);
    legacy_forces_[d.i] += fi;
    legacy_forces_[d.j] += fj;
    legacy_forces_[d.k] += fk;
    legacy_forces_[d.l] += fl;
  }
  energies_.nonbonded = evaluate_nonbonded_legacy(legacy_forces_);
  energies_.external_terms.reserve(contributions_.size());
  for (const auto& c : contributions_) {
    const double e = c->add_forces(xs, topology_, time_, legacy_forces_);
    energies_.external += e;
    energies_.external_terms.push_back({c->name(), e});
  }
  state_.set_forces(legacy_forces_);
}

void Engine::evaluate_all_forces() {
  switch (config_.force_path) {
    case ForcePath::Kernels:
      evaluate_forces_kernels();
      break;
    case ForcePath::LegacyPairList:
      evaluate_forces_legacy();
      break;
  }
  forces_current_ = true;
}

void Engine::ensure_forces_current() {
  if (!forces_current_) evaluate_all_forces();
}

const EnergyBreakdown& Engine::compute_energies() {
  evaluate_all_forces();
  return energies_;
}

double Engine::kinetic_energy() const {
  const auto mass = state_.mass();
  const auto vx = state_.vx();
  const auto vy = state_.vy();
  const auto vz = state_.vz();
  double mv2 = 0.0;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    mv2 += mass[i] * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
  }
  return 0.5 * mv2 * kMv2ToKcalMol;
}

double Engine::instantaneous_temperature() const {
  const auto dof = static_cast<double>(3 * state_.size());
  return 2.0 * kinetic_energy() / (dof * units::kB);
}

void Engine::step(std::size_t n) {
  static obs::Counter& steps = obs::metrics().counter("md.engine.steps");
  for (std::size_t s = 0; s < n; ++s) {
    steps.add(1);
    switch (config_.integrator) {
      case IntegratorKind::VelocityVerlet:
        step_velocity_verlet();
        break;
      case IntegratorKind::Langevin:
        step_langevin();
        break;
    }
    ++step_count_;
    SPICE_ENSURE(time_ == static_cast<double>(step_count_) * config_.dt,
                 "integrator failed to advance time");
  }
}

void Engine::step_velocity_verlet() {
  ensure_forces_current();
  const double dt = config_.dt;
  const std::size_t n = state_.size();
  const auto inv_mass = state_.inv_mass();
  {
    auto x = state_.x();
    auto y = state_.y();
    auto z = state_.z();
    auto vx = state_.vx();
    auto vy = state_.vy();
    auto vz = state_.vz();
    const auto fx = std::as_const(state_).fx();
    const auto fy = std::as_const(state_).fy();
    const auto fz = std::as_const(state_).fz();
    for (std::size_t i = 0; i < n; ++i) {
      const double kick = 0.5 * dt * inv_mass[i] * kForceOverMassToAcc;
      vx[i] += fx[i] * kick;
      vy[i] += fy[i] * kick;
      vz[i] += fz[i] * kick;
      x[i] += vx[i] * dt;
      y[i] += vy[i] * dt;
      z[i] += vz[i] * dt;
    }
  }
  // Forces for the closing half-kick belong to time t + dt (this matters
  // for time-dependent potentials such as the moving SMD anchor).
  time_ = static_cast<double>(step_count_ + 1) * dt;
  evaluate_all_forces();
  {
    auto vx = state_.vx();
    auto vy = state_.vy();
    auto vz = state_.vz();
    const auto fx = std::as_const(state_).fx();
    const auto fy = std::as_const(state_).fy();
    const auto fz = std::as_const(state_).fz();
    for (std::size_t i = 0; i < n; ++i) {
      const double kick = 0.5 * dt * inv_mass[i] * kForceOverMassToAcc;
      vx[i] += fx[i] * kick;
      vy[i] += fy[i] * kick;
      vz[i] += fz[i] * kick;
    }
  }
}

Vec3 Engine::langevin_noise(std::size_t particle) const {
  Rng rng = Rng::stream(config_.seed, 0x6c616e /*"lan"*/, particle, step_count_);
  return {rng.gaussian(), rng.gaussian(), rng.gaussian()};
}

void Engine::step_langevin() {
  // BAOAB splitting (Leimkuhler–Matthews): B half-kick, A half-drift,
  // O Ornstein–Uhlenbeck, A half-drift, B half-kick.
  ensure_forces_current();
  const double dt = config_.dt;
  const double c1 = std::exp(-config_.friction * dt);
  const double kbt = units::kB * config_.temperature;
  const std::size_t n = state_.size();
  const auto mass = state_.mass();
  const auto inv_mass = state_.inv_mass();

  {
    auto x = state_.x();
    auto y = state_.y();
    auto z = state_.z();
    auto vx = state_.vx();
    auto vy = state_.vy();
    auto vz = state_.vz();
    const auto fx = std::as_const(state_).fx();
    const auto fy = std::as_const(state_).fy();
    const auto fz = std::as_const(state_).fz();
    for (std::size_t i = 0; i < n; ++i) {
      const double kick = 0.5 * dt * inv_mass[i] * kForceOverMassToAcc;
      vx[i] += fx[i] * kick;
      vy[i] += fy[i] * kick;
      vz[i] += fz[i] * kick;
      x[i] += vx[i] * (0.5 * dt);
      y[i] += vy[i] * (0.5 * dt);
      z[i] += vz[i] * (0.5 * dt);
      const double sigma = std::sqrt((1.0 - c1 * c1) * kbt / (mass[i] * kMv2ToKcalMol));
      const Vec3 noise = langevin_noise(i);
      vx[i] = vx[i] * c1 + noise.x * sigma;
      vy[i] = vy[i] * c1 + noise.y * sigma;
      vz[i] = vz[i] * c1 + noise.z * sigma;
      x[i] += vx[i] * (0.5 * dt);
      y[i] += vy[i] * (0.5 * dt);
      z[i] += vz[i] * (0.5 * dt);
    }
  }
  time_ = static_cast<double>(step_count_ + 1) * dt;
  evaluate_all_forces();
  {
    auto vx = state_.vx();
    auto vy = state_.vy();
    auto vz = state_.vz();
    const auto fx = std::as_const(state_).fx();
    const auto fy = std::as_const(state_).fy();
    const auto fz = std::as_const(state_).fz();
    for (std::size_t i = 0; i < n; ++i) {
      const double kick = 0.5 * dt * inv_mass[i] * kForceOverMassToAcc;
      vx[i] += fx[i] * kick;
      vy[i] += fy[i] * kick;
      vz[i] += fz[i] * kick;
    }
  }
}

Checkpoint Engine::checkpoint() const {
  BinaryWriter w;
  w.write_u32(kCheckpointMagic);
  w.write_u32(kCheckpointVersion);
  w.write_u64(topology_.particle_count());
  w.write_u64(step_count_);
  w.write_f64(time_);
  w.write_u64(config_.seed);
  w.write_vec3_span(state_.positions());
  w.write_vec3_span(state_.velocities());
  // Neighbour-list reference positions (v2): the rebuild schedule and the
  // cell-table iteration order — and with them the floating-point
  // accumulation order of the nonbonded forces — are functions of the
  // positions the list was last built from. Without them a restored
  // engine rebuilds on its own cadence and the continuation drifts in the
  // last bits (caught by the testkit checkpoint-replay property at high
  // seed counts).
  w.write_vec3_span(neighbor_list_->reference_positions());
  return Checkpoint{w.take()};
}

void Engine::restore(const Checkpoint& snapshot) {
  BinaryReader r(snapshot.bytes);
  SPICE_REQUIRE(r.read_u32() == kCheckpointMagic, "not a SPICE checkpoint");
  SPICE_REQUIRE(r.read_u32() == kCheckpointVersion, "unsupported checkpoint version");
  const std::uint64_t n = r.read_u64();
  SPICE_REQUIRE(n == topology_.particle_count(), "checkpoint particle count mismatch");
  step_count_ = r.read_u64();
  time_ = r.read_f64();
  config_.seed = r.read_u64();
  const std::vector<Vec3> xs = r.read_vec3_vector();
  const std::vector<Vec3> vs = r.read_vec3_vector();
  SPICE_ENSURE(xs.size() == n && vs.size() == n, "corrupt checkpoint");
  state_.set_positions(xs);
  state_.set_velocities(vs);
  const std::vector<Vec3> refs = r.read_vec3_vector();
  SPICE_ENSURE(refs.empty() || refs.size() == n, "corrupt checkpoint");
  // Rebuild the neighbour list from the snapshot's reference positions so
  // the displacement criterion and the cell-table iteration order continue
  // exactly as they would have in the checkpointed engine. An empty
  // reference means the original had never built its list; building from
  // the restored positions matches what its first evaluation would do.
  neighbor_list_->rebuild(std::span<const Vec3>(refs.empty() ? xs : refs), topology_);
  forces_current_ = false;
}

Engine Engine::clone(std::uint64_t clone_seed) const {
  MdConfig cfg = config_;
  cfg.seed = clone_seed;
  return clone_with(cfg, nullptr, 0);
}

Engine Engine::clone_with(MdConfig config, std::shared_ptr<StateArena> arena,
                          std::size_t replica) const {
  Engine copy(topology_, nonbonded_, config, std::move(arena), replica);
  copy.state_.set_positions(state_.positions());
  copy.state_.set_velocities(state_.velocities());
  copy.time_ = time_;
  copy.step_count_ = step_count_;
  copy.contributions_ = contributions_;
  return copy;
}

}  // namespace spice::md
