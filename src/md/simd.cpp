#include "md/simd.hpp"

#include <cmath>
#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace spice::md::simd {

std::string_view name(Level level) {
  switch (level) {
    case Level::Scalar: return "scalar";
    case Level::AVX2: return "avx2";
    case Level::NEON: return "neon";
  }
  return "unknown";
}

bool supported(Level level) {
  switch (level) {
    case Level::Scalar:
      return true;
    case Level::AVX2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Level::NEON:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Level detect() {
  if (supported(Level::AVX2)) return Level::AVX2;
  if (supported(Level::NEON)) return Level::NEON;
  return Level::Scalar;
}

namespace {

Level resolve_env() {
  const char* env = std::getenv("SPICE_SIMD");
  if (env == nullptr || *env == '\0') return detect();
  const std::string_view text(env);
  if (text == "native" || text == "auto") return detect();
  if (text == "scalar") return Level::Scalar;
  Level forced = Level::Scalar;
  if (text == "avx2") {
    forced = Level::AVX2;
  } else if (text == "neon") {
    forced = Level::NEON;
  } else {
    SPICE_REQUIRE(false, "SPICE_SIMD must be scalar, avx2, neon or native");
  }
  SPICE_REQUIRE(supported(forced), "SPICE_SIMD forces a level this CPU lacks");
  return forced;
}

}  // namespace

Level active() {
  // Resolved exactly once; every engine constructed with Request::Auto in
  // this process dispatches identically (the determinism contract needs a
  // process-stable choice, not a per-call one).
  static const Level level = resolve_env();
  return level;
}

Level resolve(Request request) {
  switch (request) {
    case Request::Auto:
      return active();
    case Request::Scalar:
      return Level::Scalar;
    case Request::AVX2:
      SPICE_REQUIRE(supported(Level::AVX2), "AVX2 requested but not supported by this CPU");
      return Level::AVX2;
    case Request::NEON:
      SPICE_REQUIRE(supported(Level::NEON), "NEON requested but not supported by this CPU");
      return Level::NEON;
  }
  return Level::Scalar;
}

NonbondedFn nonbonded_kernel(Level level) {
  SPICE_REQUIRE(supported(level), "nonbonded kernel for unsupported SIMD level");
  switch (level) {
    case Level::AVX2: return &detail::nonbonded_avx2;
    case Level::NEON: return &detail::nonbonded_neon;
    case Level::Scalar: break;
  }
  return &detail::nonbonded_scalar;
}

BondFn bond_kernel(Level level) {
  SPICE_REQUIRE(supported(level), "bond kernel for unsupported SIMD level");
  switch (level) {
    case Level::AVX2: return &detail::bond_avx2;
    case Level::NEON: return &detail::bond_neon;
    case Level::Scalar: break;
  }
  return &detail::bond_scalar;
}

namespace detail {

// The scalar bodies repeat the historical kernel loops operation for
// operation (md/force_kernel.cpp, pre-SIMD): same guards, same order of
// adds into the running energy, same force composition. Bit-exactness of
// Level::Scalar against those loops is what the golden registry pins.

double nonbonded_scalar_range(const PairBatch& batch, const NonbondedConsts& c, Vec3* acc,
                              std::size_t begin, std::size_t end) {
  double energy = 0.0;
  for (std::size_t p = begin; p < end; ++p) {
    const std::uint32_t i = batch.i[p];
    const std::uint32_t j = batch.j[p];
    const Vec3 dr{batch.x[i] - batch.x[j], batch.y[i] - batch.y[j], batch.z[i] - batch.z[j]};
    const double r2 = dr.norm2();
    if (r2 >= c.cutoff2 || r2 <= 0.0) continue;
    Vec3 f;
    const double sigma = batch.sigma[p];
    const double wca_rc2 = sigma * sigma * c.wca_lift;
    if (r2 < wca_rc2) {
      const double s2 = sigma * sigma / r2;
      const double s6 = s2 * s2 * s2;
      const double s12 = s6 * s6;
      energy += 4.0 * c.epsilon * (s12 - s6) + c.epsilon;
      f += dr * (24.0 * c.epsilon * (2.0 * s12 - s6) / r2);
    }
    const double pref = batch.pref[p];
    if (pref != 0.0) {
      const double r = std::sqrt(r2);
      const double u_r = pref * std::exp(-r * c.inv_lambda) / r;
      energy += u_r - pref * c.shift_per_pref;
      f += dr * (u_r * (1.0 / r + c.inv_lambda) / r);
    }
    acc[i] += f;
    acc[j] -= f;
  }
  return energy;
}

double nonbonded_scalar(const PairBatch& batch, const NonbondedConsts& c, Vec3* acc) {
  return nonbonded_scalar_range(batch, c, acc, 0, batch.count);
}

double bond_scalar_range(const BondBatch& batch, Vec3* acc, std::size_t begin,
                         std::size_t end) {
  double energy = 0.0;
  for (std::size_t b = begin; b < end; ++b) {
    const std::uint32_t i = batch.i[b];
    const std::uint32_t j = batch.j[b];
    const Vec3 dr{batch.x[i] - batch.x[j], batch.y[i] - batch.y[j], batch.z[i] - batch.z[j]};
    const double r = dr.norm();
    if (r <= 0.0) continue;  // coincident sites: no well-defined force
    const double x = r - batch.r0[b];
    energy += batch.k[b] * x * x;
    const Vec3 f = dr * (-2.0 * batch.k[b] * x / r);
    acc[i] += f;
    acc[j] -= f;
  }
  return energy;
}

double bond_scalar(const BondBatch& batch, Vec3* acc) {
  return bond_scalar_range(batch, acc, 0, batch.count);
}

void exp_lanes(Level level, const double* in, double* out, std::size_t count) {
  switch (level) {
    case Level::AVX2:
      exp_lanes_avx2(in, out, count);
      return;
    case Level::NEON:
      exp_lanes_neon(in, out, count);
      return;
    case Level::Scalar:
      break;
  }
  for (std::size_t k = 0; k < count; ++k) out[k] = std::exp(in[k]);
}

}  // namespace detail

}  // namespace spice::md::simd
