#pragma once
// Extension point for forces beyond the built-in force field.
//
// External potentials (the pore model), SMD pulling springs and IMD
// steering forces all enter the engine through this interface. A
// contribution sees the whole state so it can implement collective
// couplings (e.g. a spring on the centre of mass of a selection).
//
// Evaluation is staged so contributions ride the engine's deterministic
// slice pipeline (see force_kernel.hpp):
//
//   1. begin_evaluation — serial, once per force evaluation. Compute
//      collective variables (COM, spring anchor position, accumulated
//      work, recorded statistics) here; return any energy that is not
//      attributable to a particular particle range (a COM-spring
//      potential, for instance).
//   2. accumulate_range — possibly-parallel, once per particle range.
//      The ranges of one evaluation are disjoint and cover [0, n); add
//      forces ONLY for particles in [begin, end) (never overwrite — each
//      range owns a private slice buffer) and return the energy
//      attributable to that range (per-particle potentials).
//
// The range partition is a fixed function of the particle count, so a
// contribution's floating-point accumulation order — and therefore the
// trajectory — is bit-identical for any number of worker threads.

#include <span>
#include <string>

#include "common/vec3.hpp"

namespace spice::md {

class Topology;

/// Abstract extra force, evaluated in the staged slice pipeline.
class ForceContribution {
 public:
  virtual ~ForceContribution() = default;

  /// Serial phase: update collective variables / statistics for the given
  /// positions at simulation time `time` (ps). Returns the range-less
  /// part of this contribution's potential energy in kcal/mol.
  virtual double begin_evaluation(std::span<const Vec3> positions, const Topology& topology,
                                  double time);

  /// Parallel phase: add this contribution's forces for particles with
  /// index in [begin, end) into `forces` (a full-length, absolute-indexed
  /// buffer); return the energy attributable to that range in kcal/mol.
  virtual double accumulate_range(std::span<const Vec3> positions, const Topology& topology,
                                  double time, std::size_t begin, std::size_t end,
                                  std::span<Vec3> forces) = 0;

  /// Convenience single-shot evaluation (tests, reference calculations):
  /// begin_evaluation + one full-range accumulate.
  double add_forces(std::span<const Vec3> positions, const Topology& topology, double time,
                    std::span<Vec3> forces);

  /// Human-readable name (appears in energy breakdowns and logs).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Convenience adaptor for potentials that act on each particle
/// independently, U(r_i); implement particle_energy_force. Splits
/// perfectly across ranges — no serial phase needed.
class PerParticlePotential : public ForceContribution {
 public:
  double accumulate_range(std::span<const Vec3> positions, const Topology& topology,
                          double time, std::size_t begin, std::size_t end,
                          std::span<Vec3> forces) override;

 protected:
  /// Energy of one particle at position r with the given charge; add the
  /// force on that particle to f.
  [[nodiscard]] virtual double particle_energy_force(const Vec3& r, double charge,
                                                     Vec3& f) const = 0;
};

}  // namespace spice::md
