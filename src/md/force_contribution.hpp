#pragma once
// Extension point for forces beyond the built-in force field.
//
// External potentials (the pore model), SMD pulling springs and IMD
// steering forces all enter the engine through this interface. A
// contribution sees the whole state so it can implement collective
// couplings (e.g. a spring on the centre of mass of a selection).

#include <span>
#include <string>

#include "common/vec3.hpp"

namespace spice::md {

class Topology;

/// Abstract extra force. Implementations add forces into `forces` (never
/// overwrite) and return the associated potential energy.
class ForceContribution {
 public:
  virtual ~ForceContribution() = default;

  /// Add this contribution's forces for the given positions; returns its
  /// potential energy in kcal/mol. `time` is the simulation time in ps
  /// (time-dependent protocols such as SMD pulling depend on it).
  virtual double add_forces(std::span<const Vec3> positions, const Topology& topology,
                            double time, std::span<Vec3> forces) = 0;

  /// Human-readable name (appears in energy breakdowns and logs).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Convenience adaptor for potentials that act on each particle
/// independently, U(r_i); implement particle_energy_force.
class PerParticlePotential : public ForceContribution {
 public:
  double add_forces(std::span<const Vec3> positions, const Topology& topology, double time,
                    std::span<Vec3> forces) override;

 protected:
  /// Energy of one particle at position r with the given charge; add the
  /// force on that particle to f.
  [[nodiscard]] virtual double particle_energy_force(const Vec3& r, double charge,
                                                     Vec3& f) const = 0;
};

}  // namespace spice::md
