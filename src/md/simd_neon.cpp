// NEON (aarch64) implementations of the batched MD kernels. Two-wide
// double lanes; the exp is evaluated per lane with std::exp (no
// double-precision vector exp in base NEON — the win here is the
// vectorized distance/WCA arithmetic and the packed parameter streams).
// Masking follows the AVX2 TU: dead lanes are zeroed by bitwise AND with
// comparison masks and divisions are guarded, so lane contributions are
// decided by the masks alone.

#include "md/simd.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

namespace spice::md::simd::detail {

namespace {

inline float64x2_t gather2(const double* base, std::uint32_t a, std::uint32_t b) {
  const float64x2_t lo = vld1q_dup_f64(base + a);
  return vsetq_lane_f64(base[b], lo, 1);
}

inline float64x2_t exp2_lanes(float64x2_t x) {
  float64x2_t out = vdupq_n_f64(std::exp(vgetq_lane_f64(x, 0)));
  return vsetq_lane_f64(std::exp(vgetq_lane_f64(x, 1)), out, 1);
}

inline float64x2_t masked(uint64x2_t mask, float64x2_t v) {
  return vreinterpretq_f64_u64(vandq_u64(mask, vreinterpretq_u64_f64(v)));
}

inline uint64x2_t not_u64(uint64x2_t m) {
  return vreinterpretq_u64_u32(vmvnq_u32(vreinterpretq_u32_u64(m)));
}

}  // namespace

double nonbonded_neon(const PairBatch& batch, const NonbondedConsts& c, Vec3* acc) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t tiny = vdupq_n_f64(1e-300);
  const float64x2_t cutoff2 = vdupq_n_f64(c.cutoff2);
  const float64x2_t epsilon = vdupq_n_f64(c.epsilon);
  const float64x2_t four_eps = vdupq_n_f64(4.0 * c.epsilon);
  const float64x2_t twentyfour_eps = vdupq_n_f64(24.0 * c.epsilon);
  const float64x2_t inv_lambda = vdupq_n_f64(c.inv_lambda);
  const float64x2_t shift = vdupq_n_f64(c.shift_per_pref);
  const float64x2_t wca_lift = vdupq_n_f64(c.wca_lift);
  const float64x2_t one = vdupq_n_f64(1.0);

  float64x2_t energy = zero;
  std::size_t p = 0;
  for (; p + 2 <= batch.count; p += 2) {
    const std::uint32_t i0 = batch.i[p];
    const std::uint32_t i1 = batch.i[p + 1];
    const std::uint32_t j0 = batch.j[p];
    const std::uint32_t j1 = batch.j[p + 1];
    const float64x2_t dx = vsubq_f64(gather2(batch.x, i0, i1), gather2(batch.x, j0, j1));
    const float64x2_t dy = vsubq_f64(gather2(batch.y, i0, i1), gather2(batch.y, j0, j1));
    const float64x2_t dz = vsubq_f64(gather2(batch.z, i0, i1), gather2(batch.z, j0, j1));
    float64x2_t r2 = vmulq_f64(dx, dx);
    r2 = vfmaq_f64(r2, dy, dy);
    r2 = vfmaq_f64(r2, dz, dz);

    const uint64x2_t live = vandq_u64(vcltq_f64(r2, cutoff2), vcgtq_f64(r2, zero));
    if (vgetq_lane_u64(live, 0) == 0 && vgetq_lane_u64(live, 1) == 0) continue;
    const float64x2_t r2s = vmaxq_f64(r2, tiny);

    const float64x2_t sig = vld1q_f64(batch.sigma + p);
    const float64x2_t sig2 = vmulq_f64(sig, sig);
    const float64x2_t s2 = vdivq_f64(sig2, r2s);
    const float64x2_t s6 = vmulq_f64(s2, vmulq_f64(s2, s2));
    const float64x2_t s12 = vmulq_f64(s6, s6);
    const uint64x2_t wca_on = vandq_u64(live, vcltq_f64(r2, vmulq_f64(sig2, wca_lift)));
    const float64x2_t e_wca =
        masked(wca_on, vfmaq_f64(epsilon, four_eps, vsubq_f64(s12, s6)));
    const float64x2_t f_wca = masked(
        wca_on,
        vdivq_f64(vmulq_f64(twentyfour_eps, vsubq_f64(vaddq_f64(s12, s12), s6)), r2s));

    const float64x2_t pref = vld1q_f64(batch.pref + p);
    const uint64x2_t dh_on = vandq_u64(live, not_u64(vceqq_f64(pref, zero)));
    const float64x2_t r = vsqrtq_f64(r2s);
    const float64x2_t inv_r = vdivq_f64(one, r);
    const float64x2_t u_r = vmulq_f64(
        pref, vmulq_f64(exp2_lanes(vnegq_f64(vmulq_f64(inv_lambda, r))), inv_r));
    const float64x2_t e_dh = masked(dh_on, vfmsq_f64(u_r, pref, shift));
    const float64x2_t f_dh =
        masked(dh_on, vmulq_f64(u_r, vmulq_f64(vaddq_f64(inv_r, inv_lambda), inv_r)));

    energy = vaddq_f64(energy, vaddq_f64(e_wca, e_dh));
    const float64x2_t fmag = vaddq_f64(f_wca, f_dh);
    double fx[2];
    double fy[2];
    double fz[2];
    vst1q_f64(fx, vmulq_f64(dx, fmag));
    vst1q_f64(fy, vmulq_f64(dy, fmag));
    vst1q_f64(fz, vmulq_f64(dz, fmag));
    for (int lane = 0; lane < 2; ++lane) {
      const Vec3 f{fx[lane], fy[lane], fz[lane]};
      acc[batch.i[p + lane]] += f;
      acc[batch.j[p + lane]] -= f;
    }
  }
  double total = vgetq_lane_f64(energy, 0) + vgetq_lane_f64(energy, 1);
  total += nonbonded_scalar_range(batch, c, acc, p, batch.count);
  return total;
}

double bond_neon(const BondBatch& batch, Vec3* acc) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t tiny = vdupq_n_f64(1e-300);
  const float64x2_t minus_two = vdupq_n_f64(-2.0);

  float64x2_t energy = zero;
  std::size_t b = 0;
  for (; b + 2 <= batch.count; b += 2) {
    const std::uint32_t i0 = batch.i[b];
    const std::uint32_t i1 = batch.i[b + 1];
    const std::uint32_t j0 = batch.j[b];
    const std::uint32_t j1 = batch.j[b + 1];
    const float64x2_t dx = vsubq_f64(gather2(batch.x, i0, i1), gather2(batch.x, j0, j1));
    const float64x2_t dy = vsubq_f64(gather2(batch.y, i0, i1), gather2(batch.y, j0, j1));
    const float64x2_t dz = vsubq_f64(gather2(batch.z, i0, i1), gather2(batch.z, j0, j1));
    float64x2_t r2 = vmulq_f64(dx, dx);
    r2 = vfmaq_f64(r2, dy, dy);
    r2 = vfmaq_f64(r2, dz, dz);
    const uint64x2_t live = vcgtq_f64(r2, zero);
    const float64x2_t r = vsqrtq_f64(vmaxq_f64(r2, tiny));
    const float64x2_t k = vld1q_f64(batch.k + b);
    const float64x2_t ext = vsubq_f64(r, vld1q_f64(batch.r0 + b));
    energy = vaddq_f64(energy, masked(live, vmulq_f64(k, vmulq_f64(ext, ext))));
    const float64x2_t fmag =
        masked(live, vdivq_f64(vmulq_f64(minus_two, vmulq_f64(k, ext)), r));
    double fx[2];
    double fy[2];
    double fz[2];
    vst1q_f64(fx, vmulq_f64(dx, fmag));
    vst1q_f64(fy, vmulq_f64(dy, fmag));
    vst1q_f64(fz, vmulq_f64(dz, fmag));
    for (int lane = 0; lane < 2; ++lane) {
      const Vec3 f{fx[lane], fy[lane], fz[lane]};
      acc[batch.i[b + lane]] += f;
      acc[batch.j[b + lane]] -= f;
    }
  }
  double total = vgetq_lane_f64(energy, 0) + vgetq_lane_f64(energy, 1);
  total += bond_scalar_range(batch, acc, b, batch.count);
  return total;
}

void exp_lanes_neon(const double* in, double* out, std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) out[k] = std::exp(in[k]);
}

}  // namespace spice::md::simd::detail

#else  // non-aarch64: aborting stubs; supported(Level::NEON) is false here.

#include "common/error.hpp"

namespace spice::md::simd::detail {

double nonbonded_neon(const PairBatch&, const NonbondedConsts&, Vec3*) {
  SPICE_REQUIRE(false, "NEON kernel called on a non-aarch64 build");
  return 0.0;
}

double bond_neon(const BondBatch&, Vec3*) {
  SPICE_REQUIRE(false, "NEON kernel called on a non-aarch64 build");
  return 0.0;
}

void exp_lanes_neon(const double*, double*, std::size_t) {
  SPICE_REQUIRE(false, "NEON kernel called on a non-aarch64 build");
}

}  // namespace spice::md::simd::detail

#endif
