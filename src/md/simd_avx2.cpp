// AVX2 + FMA implementations of the batched MD kernels (see simd.hpp).
// This translation unit is the ONLY one compiled with -mavx2 -mfma (see
// src/md/CMakeLists.txt); the dispatch tables in simd.cpp hand these
// functions out only when runtime detection reports AVX2+FMA, so the rest
// of the binary stays runnable on any x86-64.
//
// The nonbonded kernel is MIXED PRECISION, the standard coarse-grained MD
// trade (cf. GROMACS): endpoint coordinates are loaded from an
// (x,y,z,0)-packed mirror and differenced in double (no cancellation on
// absolute positions), the per-pair WCA + Debye–Hückel math runs 8-wide
// in fp32, and the force magnitude is widened back to double before the
// deterministic scatter-add. Profiling
// on the target hosts showed the double pipeline is gated by the
// unpipelined vector divider (div+sqrt+exp ≈ 22 cycles per 4 lanes); in
// fp32 a Newton-refined rsqrt and a polynomial expf make the whole pair
// term divider-free. Max relative force error vs the scalar kernel is
// ~2e-7 — far below the thermal noise the Langevin integrator injects —
// and the testkit SIMD-agreement test pins it to a 1e-5 ladder rung.
// Dead lanes (beyond cutoff, r² = 0, outside the WCA shell, uncharged)
// are masked to exact zeros, so masks alone decide a lane's contribution.
// Force scatter-add is scalar per lane — pairs within a group may share
// endpoints, so a vectorized scatter would lose colliding updates.

#include "md/simd.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cmath>

namespace spice::md::simd::detail {

namespace {

/// exp(x) over 4 lanes, Cephes expd scheme: x = n·ln2 + r with |r| ≤
/// ln2/2, e^r from a (3,4) rational minimax in r², scale by 2^n through
/// exponent-field arithmetic. Accurate to ~1 ulp over the DH domain
/// (arguments here are −r/λ_D ∈ [−6, 0]); valid for |x| ≲ 700.
inline __m256d exp_pd(__m256d x) {
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d ln2_hi = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d ln2_lo = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d n =
      _mm256_round_pd(_mm256_mul_pd(x, log2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(n, ln2_hi, x);
  r = _mm256_fnmadd_pd(n, ln2_lo, r);
  const __m256d r2 = _mm256_mul_pd(r, r);
  __m256d p = _mm256_set1_pd(1.26177193074810590878e-4);
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(3.02994407707441961300e-2));
  p = _mm256_fmadd_pd(p, r2, _mm256_set1_pd(9.99999999999999999910e-1));
  p = _mm256_mul_pd(p, r);
  __m256d q = _mm256_set1_pd(3.00198505138664455042e-6);
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.52448340349684104192e-3));
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.27265548208155028766e-1));
  q = _mm256_fmadd_pd(q, r2, _mm256_set1_pd(2.00000000000000000005e0));
  const __m256d er = _mm256_add_pd(
      _mm256_set1_pd(1.0),
      _mm256_mul_pd(_mm256_set1_pd(2.0), _mm256_div_pd(p, _mm256_sub_pd(q, p))));
  // 2^n via the exponent field: (n + 1023) << 52 as a double.
  const __m128i n32 = _mm256_cvtpd_epi32(n);
  const __m256i n64 = _mm256_cvtepi32_epi64(n32);
  const __m256i pow2 =
      _mm256_slli_epi64(_mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
  return _mm256_mul_pd(er, _mm256_castsi256_pd(pow2));
}

inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swap = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swap));
}

/// expf(x) over 8 fp32 lanes, Cephes expf scheme (degree-5 polynomial
/// after n·ln2 range reduction, 2^n through the exponent field). ~2e-7
/// relative over the DH domain; division-free.
inline __m256 exp_ps8(__m256 x) {
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  x = _mm256_max_ps(_mm256_min_ps(x, _mm256_set1_ps(88.0f)), _mm256_set1_ps(-88.0f));
  const __m256 n = _mm256_round_ps(_mm256_mul_ps(x, log2e),
                                   _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  x = _mm256_fnmadd_ps(n, c1, x);
  x = _mm256_fnmadd_ps(n, c2, x);
  const __m256 x2 = _mm256_mul_ps(x, x);
  __m256 p = _mm256_set1_ps(1.9875691500e-4f);
  p = _mm256_fmadd_ps(p, x, _mm256_set1_ps(1.3981999507e-3f));
  p = _mm256_fmadd_ps(p, x, _mm256_set1_ps(8.3334519073e-3f));
  p = _mm256_fmadd_ps(p, x, _mm256_set1_ps(4.1665795894e-2f));
  p = _mm256_fmadd_ps(p, x, _mm256_set1_ps(1.6666665459e-1f));
  p = _mm256_fmadd_ps(p, x, _mm256_set1_ps(5.0000001201e-1f));
  p = _mm256_fmadd_ps(p, x2, _mm256_add_ps(x, _mm256_set1_ps(1.0f)));
  const __m256i ni = _mm256_cvtps_epi32(n);
  const __m256i pow2 = _mm256_slli_epi32(_mm256_add_epi32(ni, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(p, _mm256_castsi256_ps(pow2));
}

/// Widen the two fp32 half-vectors of an 8-lane value back to double.
inline __m256d widen_lo(__m256 v) { return _mm256_cvtps_pd(_mm256_castps256_ps128(v)); }
inline __m256d widen_hi(__m256 v) { return _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)); }

}  // namespace

double nonbonded_avx2(const PairBatch& batch, const NonbondedConsts& c, Vec3* acc) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 cutoff2 = _mm256_set1_ps(static_cast<float>(c.cutoff2));
  const __m256 epsilon = _mm256_set1_ps(static_cast<float>(c.epsilon));
  const __m256 four_eps = _mm256_set1_ps(static_cast<float>(4.0 * c.epsilon));
  const __m256 twentyfour_eps = _mm256_set1_ps(static_cast<float>(24.0 * c.epsilon));
  const __m256 inv_lambda = _mm256_set1_ps(static_cast<float>(c.inv_lambda));
  const __m256 neg_inv_lambda = _mm256_set1_ps(static_cast<float>(-c.inv_lambda));
  const __m256 shift = _mm256_set1_ps(static_cast<float>(c.shift_per_pref));
  const __m256 wca_lift = _mm256_set1_ps(static_cast<float>(c.wca_lift));
  // r² floor: 0.01 Å of separation. Keeps s¹² finite in fp32 (overlapping
  // beads get a huge-but-finite repulsion instead of Inf−Inf = NaN); real
  // trajectories never get near it.
  const __m256 r2_floor = _mm256_set1_ps(1e-4f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 three_half = _mm256_set1_ps(1.5f);

  const double* P = batch.xyzw;
  __m256d energy = _mm256_setzero_pd();
  std::size_t p = 0;
  for (; p + 8 <= batch.count; p += 8) {
    // Displacements in double from the (x,y,z,0)-packed mirror: one
    // 32-byte load per endpoint and a subtract give a pair's (dx,dy,dz,·)
    // row; a 4x4 transpose turns four rows into lane form. Differencing in
    // double first costs no bits (dx ≤ cutoff while the absolute
    // coordinates are not) and replaces twelve gathers with sixteen plain
    // loads per eight pairs.
    __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(P + 4 * batch.i[p + 0]),
                               _mm256_loadu_pd(P + 4 * batch.j[p + 0]));
    __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(P + 4 * batch.i[p + 1]),
                               _mm256_loadu_pd(P + 4 * batch.j[p + 1]));
    __m256d d2 = _mm256_sub_pd(_mm256_loadu_pd(P + 4 * batch.i[p + 2]),
                               _mm256_loadu_pd(P + 4 * batch.j[p + 2]));
    __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(P + 4 * batch.i[p + 3]),
                               _mm256_loadu_pd(P + 4 * batch.j[p + 3]));
    __m256d t0 = _mm256_unpacklo_pd(d0, d1);  // x0 x1 z0 z1
    __m256d t1 = _mm256_unpackhi_pd(d0, d1);  // y0 y1 ·  ·
    __m256d t2 = _mm256_unpacklo_pd(d2, d3);
    __m256d t3 = _mm256_unpackhi_pd(d2, d3);
    const __m256d dx_lo = _mm256_permute2f128_pd(t0, t2, 0x20);
    const __m256d dy_lo = _mm256_permute2f128_pd(t1, t3, 0x20);
    const __m256d dz_lo = _mm256_permute2f128_pd(t0, t2, 0x31);
    d0 = _mm256_sub_pd(_mm256_loadu_pd(P + 4 * batch.i[p + 4]),
                       _mm256_loadu_pd(P + 4 * batch.j[p + 4]));
    d1 = _mm256_sub_pd(_mm256_loadu_pd(P + 4 * batch.i[p + 5]),
                       _mm256_loadu_pd(P + 4 * batch.j[p + 5]));
    d2 = _mm256_sub_pd(_mm256_loadu_pd(P + 4 * batch.i[p + 6]),
                       _mm256_loadu_pd(P + 4 * batch.j[p + 6]));
    d3 = _mm256_sub_pd(_mm256_loadu_pd(P + 4 * batch.i[p + 7]),
                       _mm256_loadu_pd(P + 4 * batch.j[p + 7]));
    t0 = _mm256_unpacklo_pd(d0, d1);
    t1 = _mm256_unpackhi_pd(d0, d1);
    t2 = _mm256_unpacklo_pd(d2, d3);
    t3 = _mm256_unpackhi_pd(d2, d3);
    const __m256d dx_hi = _mm256_permute2f128_pd(t0, t2, 0x20);
    const __m256d dy_hi = _mm256_permute2f128_pd(t1, t3, 0x20);
    const __m256d dz_hi = _mm256_permute2f128_pd(t0, t2, 0x31);
    const __m256 dx = _mm256_insertf128_ps(_mm256_castps128_ps256(_mm256_cvtpd_ps(dx_lo)),
                                           _mm256_cvtpd_ps(dx_hi), 1);
    const __m256 dy = _mm256_insertf128_ps(_mm256_castps128_ps256(_mm256_cvtpd_ps(dy_lo)),
                                           _mm256_cvtpd_ps(dy_hi), 1);
    const __m256 dz = _mm256_insertf128_ps(_mm256_castps128_ps256(_mm256_cvtpd_ps(dz_lo)),
                                           _mm256_cvtpd_ps(dz_hi), 1);
    __m256 r2 = _mm256_mul_ps(dx, dx);
    r2 = _mm256_fmadd_ps(dy, dy, r2);
    r2 = _mm256_fmadd_ps(dz, dz, r2);

    const __m256 live = _mm256_and_ps(_mm256_cmp_ps(r2, cutoff2, _CMP_LT_OQ),
                                      _mm256_cmp_ps(r2, zero, _CMP_GT_OQ));
    const int mask = _mm256_movemask_ps(live);
    if (mask == 0) continue;
    const __m256 r2s = _mm256_max_ps(r2, r2_floor);

    // Divider-free 1/r: rsqrt seed + one Newton step lands at fp32
    // precision (~2e-7). 1/r² and r both derive from it.
    __m256 inv_r = _mm256_rsqrt_ps(r2s);
    inv_r = _mm256_mul_ps(inv_r,
                          _mm256_fnmadd_ps(_mm256_mul_ps(half, r2s),
                                           _mm256_mul_ps(inv_r, inv_r), three_half));
    const __m256 inv_r2 = _mm256_mul_ps(inv_r, inv_r);
    const __m256 r = _mm256_mul_ps(r2s, inv_r);

    // WCA: 4ε(s¹² − s⁶) + ε inside r² < 2^{1/3}σ².
    const __m256 sig2 = _mm256_loadu_ps(batch.sig2f + p);
    const __m256 s2 = _mm256_mul_ps(sig2, inv_r2);
    const __m256 s6 = _mm256_mul_ps(s2, _mm256_mul_ps(s2, s2));
    const __m256 s12 = _mm256_mul_ps(s6, s6);
    const __m256 wca_on = _mm256_and_ps(
        live, _mm256_cmp_ps(r2, _mm256_mul_ps(sig2, wca_lift), _CMP_LT_OQ));
    const __m256 e_wca = _mm256_and_ps(
        wca_on, _mm256_fmadd_ps(four_eps, _mm256_sub_ps(s12, s6), epsilon));
    const __m256 f_wca = _mm256_and_ps(
        wca_on,
        _mm256_mul_ps(
            _mm256_mul_ps(twentyfour_eps, _mm256_sub_ps(_mm256_add_ps(s12, s12), s6)),
            inv_r2));

    // Debye–Hückel: pref·e^{−r/λ}/r − pref·shift on charged pairs.
    const __m256 pref = _mm256_loadu_ps(batch.pref_f + p);
    const __m256 dh_on = _mm256_and_ps(live, _mm256_cmp_ps(pref, zero, _CMP_NEQ_OQ));
    const __m256 u_r =
        _mm256_mul_ps(pref, _mm256_mul_ps(exp_ps8(_mm256_mul_ps(neg_inv_lambda, r)), inv_r));
    const __m256 e_dh = _mm256_and_ps(dh_on, _mm256_fnmadd_ps(pref, shift, u_r));
    const __m256 f_dh = _mm256_and_ps(
        dh_on, _mm256_mul_ps(u_r, _mm256_mul_ps(_mm256_add_ps(inv_r, inv_lambda), inv_r)));

    const __m256 e_pair = _mm256_add_ps(e_wca, e_dh);
    energy = _mm256_add_pd(energy, widen_lo(e_pair));
    energy = _mm256_add_pd(energy, widen_hi(e_pair));

    // Widen the force magnitude and apply it to the DOUBLE displacement:
    // the accumulated forces stay full precision downstream.
    const __m256 fmag = _mm256_add_ps(f_wca, f_dh);
    alignas(32) double fx[8];
    alignas(32) double fy[8];
    alignas(32) double fz[8];
    const __m256d fmag_lo = widen_lo(fmag);
    const __m256d fmag_hi = widen_hi(fmag);
    _mm256_store_pd(fx, _mm256_mul_pd(dx_lo, fmag_lo));
    _mm256_store_pd(fx + 4, _mm256_mul_pd(dx_hi, fmag_hi));
    _mm256_store_pd(fy, _mm256_mul_pd(dy_lo, fmag_lo));
    _mm256_store_pd(fy + 4, _mm256_mul_pd(dy_hi, fmag_hi));
    _mm256_store_pd(fz, _mm256_mul_pd(dz_lo, fmag_lo));
    _mm256_store_pd(fz + 4, _mm256_mul_pd(dz_hi, fmag_hi));
    for (int lane = 0; lane < 8; ++lane) {
      const Vec3 f{fx[lane], fy[lane], fz[lane]};
      acc[batch.i[p + lane]] += f;
      acc[batch.j[p + lane]] -= f;
    }
  }
  double total = hsum(energy);
  total += nonbonded_scalar_range(batch, c, acc, p, batch.count);
  return total;
}

double bond_avx2(const BondBatch& batch, Vec3* acc) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d tiny = _mm256_set1_pd(1e-300);
  const __m256d minus_two = _mm256_set1_pd(-2.0);

  __m256d energy = zero;
  std::size_t b = 0;
  for (; b + 4 <= batch.count; b += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(batch.i + b));
    const __m128i vj = _mm_loadu_si128(reinterpret_cast<const __m128i*>(batch.j + b));
    const __m256d xi = _mm256_i32gather_pd(batch.x, vi, 8);
    const __m256d yi = _mm256_i32gather_pd(batch.y, vi, 8);
    const __m256d zi = _mm256_i32gather_pd(batch.z, vi, 8);
    const __m256d xj = _mm256_i32gather_pd(batch.x, vj, 8);
    const __m256d yj = _mm256_i32gather_pd(batch.y, vj, 8);
    const __m256d zj = _mm256_i32gather_pd(batch.z, vj, 8);
    const __m256d dx = _mm256_sub_pd(xi, xj);
    const __m256d dy = _mm256_sub_pd(yi, yj);
    const __m256d dz = _mm256_sub_pd(zi, zj);
    __m256d r2 = _mm256_mul_pd(dx, dx);
    r2 = _mm256_fmadd_pd(dy, dy, r2);
    r2 = _mm256_fmadd_pd(dz, dz, r2);
    const __m256d live = _mm256_cmp_pd(r2, zero, _CMP_GT_OQ);
    const __m256d r = _mm256_sqrt_pd(_mm256_max_pd(r2, tiny));
    const __m256d k = _mm256_loadu_pd(batch.k + b);
    const __m256d ext = _mm256_sub_pd(r, _mm256_loadu_pd(batch.r0 + b));
    energy = _mm256_add_pd(
        energy, _mm256_and_pd(live, _mm256_mul_pd(k, _mm256_mul_pd(ext, ext))));
    const __m256d fmag = _mm256_and_pd(
        live, _mm256_div_pd(_mm256_mul_pd(minus_two, _mm256_mul_pd(k, ext)), r));
    alignas(32) double fx[4];
    alignas(32) double fy[4];
    alignas(32) double fz[4];
    _mm256_store_pd(fx, _mm256_mul_pd(dx, fmag));
    _mm256_store_pd(fy, _mm256_mul_pd(dy, fmag));
    _mm256_store_pd(fz, _mm256_mul_pd(dz, fmag));
    for (int lane = 0; lane < 4; ++lane) {
      const Vec3 f{fx[lane], fy[lane], fz[lane]};
      acc[batch.i[b + lane]] += f;
      acc[batch.j[b + lane]] -= f;
    }
  }
  double total = hsum(energy);
  total += bond_scalar_range(batch, acc, b, batch.count);
  return total;
}

void exp_lanes_avx2(const double* in, double* out, std::size_t count) {
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    _mm256_storeu_pd(out + k, exp_pd(_mm256_loadu_pd(in + k)));
  }
  for (; k < count; ++k) out[k] = std::exp(in[k]);
}

}  // namespace spice::md::simd::detail

#else  // non-x86: aborting stubs; supported(Level::AVX2) is false here.

#include "common/error.hpp"

namespace spice::md::simd::detail {

double nonbonded_avx2(const PairBatch&, const NonbondedConsts&, Vec3*) {
  SPICE_REQUIRE(false, "AVX2 kernel called on a non-x86 build");
  return 0.0;
}

double bond_avx2(const BondBatch&, Vec3*) {
  SPICE_REQUIRE(false, "AVX2 kernel called on a non-x86 build");
  return 0.0;
}

void exp_lanes_avx2(const double*, double*, std::size_t) {
  SPICE_REQUIRE(false, "AVX2 kernel called on a non-x86 build");
}

}  // namespace spice::md::simd::detail

#endif
