#pragma once
// The paper's computational cost model (§I back-of-the-envelope):
//
//   * ~300,000 atoms; 1 ns of physical time ≈ 24 h on 128 processors
//     ⇒ ~3000 CPU-hours per nanosecond;
//   * translocation timescale ~10 µs ⇒ vanilla MD needs ~3×10⁷ CPU-hours;
//   * SMD-JE reduces the requirement by a factor of 50–100;
//   * waiting for Moore's law alone ("simple speed doubling every 18
//     months") leaves such simulations "a couple of decades" away.
//
// The model also provides per-step wall-clock times for the IMD session
// (frame cadence on 128/256 processors) and job runtimes for the grid
// campaign, keeping E5, E6 and E7 on one consistent set of numbers.

#include <cstddef>

namespace spice::core {

struct MdCostModel {
  double atoms = 300000.0;
  int reference_processors = 128;
  double hours_per_ns_at_reference = 24.0;  ///< wall-clock h per simulated ns
  double timestep_fs = 1.0;                 ///< all-atom MD timestep
  /// Parallel efficiency lost per processor-count doubling beyond the
  /// reference (strong scaling is sub-linear).
  double efficiency_per_doubling = 0.85;
};

/// CPU-hours per simulated nanosecond (≈3000 with the defaults).
[[nodiscard]] double cpu_hours_per_ns(const MdCostModel& model);

/// Wall-clock hours to simulate `ns` nanoseconds on `processors`.
[[nodiscard]] double wall_hours(const MdCostModel& model, double ns, int processors);

/// Wall-clock seconds per MD step on `processors` (IMD frame cadence).
[[nodiscard]] double seconds_per_step(const MdCostModel& model, int processors);

/// CPU-hours for a vanilla equilibrium simulation of `microseconds` µs
/// (≈3×10⁷ for 10 µs with the defaults).
[[nodiscard]] double vanilla_cpu_hours(const MdCostModel& model, double microseconds);

/// One frame of coordinates on the wire, bytes (3 × float32 per atom).
[[nodiscard]] double frame_bytes(const MdCostModel& model);

struct SmdCampaignCost {
  std::size_t simulations = 0;
  double ns_each = 0.0;
  double cpu_hours_total = 0.0;
  double reduction_vs_vanilla = 0.0;  ///< the paper's 50–100× factor
};

/// Cost of an SMD-JE campaign of `simulations` pulls of `ns_each`
/// nanoseconds, compared against the vanilla cost of `microseconds` µs.
[[nodiscard]] SmdCampaignCost smdje_campaign_cost(const MdCostModel& model,
                                                  std::size_t simulations, double ns_each,
                                                  double vanilla_microseconds);

/// Years of pure Moore's-law speed doubling (every `doubling_months`)
/// until a vanilla `microseconds` µs run fits in `acceptable_days` of
/// wall-clock on the reference processor count (≈20 years with defaults —
/// the paper's "couple of decades").
[[nodiscard]] double moore_years_until_routine(const MdCostModel& model, double microseconds,
                                               double acceptable_days = 7.0,
                                               double doubling_months = 18.0);

}  // namespace spice::core
