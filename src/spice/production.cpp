#include "spice/production.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "grid/workload.hpp"

namespace spice::core {

namespace {

CampaignProgress make_progress(double sim_hours, const spice::grid::Federation& federation,
                               const spice::grid::Broker& broker, bool final_frame) {
  CampaignProgress progress;
  progress.sim_hours = sim_hours;
  progress.final_frame = final_frame;
  progress.requested = broker.requested();
  progress.completed = broker.completed();
  progress.failed = broker.failed();
  progress.held = broker.held_count();
  progress.outstanding = broker.outstanding();
  progress.sites.reserve(federation.sites().size());
  for (const auto& site : federation.sites()) {
    progress.sites.push_back({site->name(), site->queue_length(), site->running_count(),
                              site->free_processors(), site->backlog_hours(),
                              site->in_outage()});
  }
  return progress;
}

}  // namespace

ProductionPlan plan_production_jobs(const SweepConfig& sweep, const MdCostModel& cost,
                                    std::size_t equal_replicas) {
  ProductionPlan plan;
  spice::grid::JobId next_id = 1;
  for (const double kappa : sweep.kappas_pn) {
    for (const double velocity : sweep.velocities_ns) {
      const std::size_t replicas =
          equal_replicas > 0 ? equal_replicas : sweep.samples_for(velocity);
      // A 10 Å pull at v Å/ns is (distance / v) ns of MD.
      const double ns = sweep.pull_distance / velocity;
      for (std::size_t r = 0; r < replicas; ++r) {
        spice::grid::Job job;
        job.id = next_id++;
        job.kind = spice::grid::JobKind::Campaign;
        job.processors = (plan.jobs.size() % 2 == 0) ? 128 : 256;
        job.runtime_hours = wall_hours(cost, ns, job.processors);
        job.name = "smdje-k" + std::to_string(static_cast<int>(kappa)) + "-v" +
                   std::to_string(static_cast<int>(velocity)) + "-r" + std::to_string(r);
        plan.expected_cpu_hours += job.processors * job.runtime_hours;
        plan.total_simulated_ns += ns;
        plan.jobs.push_back(std::move(job));
      }
    }
  }
  SPICE_ENSURE(!plan.jobs.empty(), "empty production plan");
  return plan;
}

ProductionExecution execute_on_federation(const ProductionPlan& plan,
                                          const ExecutionOptions& options) {
  SPICE_TRACE_SCOPE_CAT("campaign.execute_on_federation", "campaign");
  spice::grid::EventQueue events;
  events.set_tracer(options.tracer);
  spice::grid::Federation federation(events);
  spice::grid::build_spice_federation(federation);

  // Contention: every site carries background load.
  for (const auto& site : federation.sites()) {
    spice::grid::WorkloadParams load;
    load.target_utilization = options.background_utilization;
    load.horizon_hours = options.horizon_hours;
    load.seed = options.seed;
    spice::grid::generate_background_load(*site, events, load);
  }

  // Optional outage (the paper's security breach took out the sole usable
  // UK node for weeks).
  if (options.outage.has_value()) {
    const SiteOutage& outage = *options.outage;
    spice::grid::Site* site = federation.find(outage.site);
    SPICE_REQUIRE(site != nullptr, "outage names unknown site: " + outage.site);
    events.at(outage.start_hours, [site, outage] {
      site->fail_until(outage.start_hours + outage.duration_hours);
    });
  }

  // Seeded fault injection (scheduled outages, random failure processes,
  // network degradation windows) on top of any single explicit outage.
  std::optional<spice::grid::FaultInjector> injector;
  if (options.faults.enabled()) {
    injector.emplace(federation, options.faults);
    injector->arm();
  }

  spice::grid::CampaignConfig campaign;
  campaign.jobs = plan.jobs;
  campaign.policy = options.policy;
  campaign.single_site = options.single_site;
  campaign.restrict_grid = options.restrict_to_grid;
  campaign.retry = options.retry;
  campaign.checkpoint_interval_hours = options.checkpoint_interval_hours;
  campaign.completion_floor = options.completion_floor;

  spice::grid::Broker broker(federation, campaign);
  // Let queues build up for a few hours so the campaign meets realistic
  // contention rather than empty machines.
  events.run_until(24.0);
  broker.submit_all();

  // Mission-control frames on the virtual clock: a self-rescheduling DES
  // event snapshots broker + site state every interval. Pending frame
  // events past completion are harmless — the drive loop below exits on
  // broker.done() regardless of what is still queued.
  std::function<void()> progress_tick;  // outlives every scheduled reference
  if (options.on_progress && options.progress_interval_hours > 0.0) {
    progress_tick = [&events, &federation, &broker, &options, &progress_tick] {
      if (broker.done()) return;
      options.on_progress(make_progress(events.now(), federation, broker, false));
      events.after(options.progress_interval_hours, [&progress_tick] { progress_tick(); });
    };
    events.after(options.progress_interval_hours, [&progress_tick] { progress_tick(); });
  }

  while (!broker.done() && events.step()) {
  }
  if (options.on_progress) {
    options.on_progress(make_progress(events.now(), federation, broker, true));
  }

  ProductionExecution exec;
  exec.campaign = broker.result();
  exec.makespan_hours = exec.campaign.makespan_hours;
  exec.makespan_days = exec.makespan_hours / 24.0;
  for (const auto& job : exec.campaign.finished_jobs) {
    if (job.requeues > 0 && job.state == spice::grid::JobState::Completed) {
      ++exec.jobs_requeued;
    }
  }
  exec.checkpoint_restarts = exec.campaign.checkpoint_restarts;
  exec.held_dispatches = exec.campaign.held_dispatches;
  exec.credited_cpu_hours = exec.campaign.credited_cpu_hours;
  exec.wasted_cpu_hours = exec.campaign.wasted_cpu_hours;
  exec.shortfall = exec.campaign.shortfall();
  exec.degraded = exec.campaign.degraded();
  exec.meets_floor = exec.campaign.meets_floor();
  return exec;
}

}  // namespace spice::core
