#include "spice/report.hpp"

#include <iomanip>
#include <sstream>

namespace spice::core {

namespace {
void heading(std::ostringstream& os, const std::string& text) {
  os << "\n## " << text << "\n\n";
}
}  // namespace

std::string render_science_summary(const ProductionReport& production) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "| kappa (pN/A) | v (A/ns) | samples | sigma_stat | sigma_sys | combined |\n";
  os << "|---:|---:|---:|---:|---:|---:|\n";
  for (const auto& s : production.sweep.scores) {
    os << "| " << s.kappa_pn << " | " << s.velocity_ns << " | " << s.samples << " | "
       << s.sigma_stat << " | " << s.sigma_sys << " | " << s.combined() << " |\n";
  }
  os << "\nSelection rationale:\n\n";
  for (const auto& line : production.optimal.rationale) {
    os << "- " << line << "\n";
  }
  os << "\n**Optimal parameters: kappa = " << production.optimal.best.kappa_pn
     << " pN/A, v = " << production.optimal.best.velocity_ns << " A/ns**\n";
  return os.str();
}

std::string render_markdown_report(const PipelineReport& report) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "# SPICE campaign report\n";

  heading(os, "Phase 1 — static structural analysis");
  os << "- constriction: R = " << report.statics.constriction_radius << " A at z = "
     << report.statics.constriction_z << " A\n";
  os << "- vestibule radius: " << report.statics.vestibule_radius << " A\n";
  os << "- barrel radius: " << report.statics.barrel_radius << " A\n";
  os << "\n```\n" << report.statics.rendering << "```\n";

  heading(os, "Phase 2 — interactive MD");
  os << "- co-scheduled window: "
     << (report.interactive.coschedule_feasible ? "booked" : "NOT available")
     << " (start t+" << report.interactive.coschedule_start_hours << " h)\n";
  os << "- network: " << report.interactive.network_used << "\n";
  os << "- simulation efficiency: " << 100.0 * report.interactive.imd.efficiency()
     << "% (stall " << 100.0 * report.interactive.imd.stall_fraction() << "%)\n";
  os << "- steering commands applied: " << report.interactive.imd.commands_applied << "\n";
  os << "- haptic force scale: " << report.interactive.mean_haptic_force
     << " kcal/mol/A -> kappa bracket [" << report.interactive.suggested_kappa_lo_pn
     << ", " << report.interactive.suggested_kappa_hi_pn << "] pN/A\n";

  heading(os, "Phase 3 — preprocessing");
  os << "- coarse sweep cells: " << report.preprocessing.sweep.combos.size() << "\n";
  os << "- retained kappa values:";
  for (const double k : report.preprocessing.retained_kappas_pn) os << " " << k;
  os << "\n";

  heading(os, "Phase 4 — production on the federated grid");
  const auto& production = report.production;
  os << "- jobs: " << production.plan.jobs.size() << " (expected "
     << production.plan.expected_cpu_hours << " CPU-hours)\n";
  os << "- makespan: " << production.execution.makespan_days << " days\n";
  os << "- completed: " << production.execution.campaign.completed << ", requeued after "
     << "failures: " << production.execution.jobs_requeued << "\n";
  const auto& exec = production.execution;
  os << "- cpu-hours: " << exec.campaign.total_cpu_hours << " consumed, "
     << exec.credited_cpu_hours << " credited, " << exec.wasted_cpu_hours << " wasted";
  if (exec.campaign.total_cpu_hours > 0.0) {
    os << " (efficiency " << 100.0 * exec.credited_cpu_hours / exec.campaign.total_cpu_hours
       << "%)";
  }
  os << "\n";
  if (exec.held_dispatches > 0 || exec.checkpoint_restarts > 0) {
    os << "- resilience: " << exec.held_dispatches << " held dispatches, "
       << exec.checkpoint_restarts << " checkpoint-credited restarts\n";
  }
  if (exec.shortfall > 0) {
    os << "- shortfall: " << exec.shortfall << " replicas lost ("
       << (exec.meets_floor ? "within" : "BELOW") << " the configured completion floor"
       << (exec.degraded ? ", degraded campaign" : "") << ")\n";
  }
  os << "- placement:";
  for (const auto& [site, n] : production.execution.campaign.jobs_per_site) {
    os << " " << site << ":" << n;
  }
  os << "\n- cost vs vanilla 10 us MD: " << production.cost.reduction_vs_vanilla
     << "x cheaper\n";

  heading(os, "Science result");
  os << render_science_summary(production);
  return os.str();
}

}  // namespace spice::core
