#pragma once
// Human-readable campaign report: renders a PipelineReport as Markdown —
// the programmatic equivalent of the paper's §III-IV narrative, suitable
// for dropping into a lab notebook or CI artifact.

#include <string>

#include "spice/pipeline.hpp"

namespace spice::core {

/// Render the full pipeline report as Markdown.
[[nodiscard]] std::string render_markdown_report(const PipelineReport& report);

/// Render only the production-phase science summary (Fig. 4 table +
/// selection rationale).
[[nodiscard]] std::string render_science_summary(const ProductionReport& production);

}  // namespace spice::core
