#include "spice/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace spice::core {

OptimizerReport select_optimal_parameters(const std::vector<spice::fe::ParameterScore>& scores,
                                          const OptimizerConfig& config) {
  SPICE_REQUIRE(!scores.empty(), "optimizer needs scores");
  OptimizerReport report;

  // Group by κ and average the combined error over velocities.
  std::map<double, std::vector<const spice::fe::ParameterScore*>> by_kappa;
  for (const auto& s : scores) by_kappa[s.kappa_pn].push_back(&s);

  double best_kappa = 0.0;
  double best_kappa_error = std::numeric_limits<double>::infinity();
  for (const auto& [kappa, cell] : by_kappa) {
    double combined = 0.0;
    for (const auto* s : cell) combined += s->combined();
    combined /= static_cast<double>(cell.size());
    std::ostringstream line;
    line << "kappa = " << kappa << " pN/A: mean combined error " << combined << " kcal/mol";
    report.rationale.push_back(line.str());
    if (combined < best_kappa_error) {
      best_kappa_error = combined;
      best_kappa = kappa;
    }
  }
  {
    std::ostringstream line;
    line << "trade-off spring constant: kappa = " << best_kappa << " pN/A";
    report.rationale.push_back(line.str());
  }

  // Within the winning κ: find velocities with indistinguishable σ_sys and
  // take the slowest.
  const auto& cell = by_kappa.at(best_kappa);
  double min_sys = std::numeric_limits<double>::infinity();
  for (const auto* s : cell) min_sys = std::min(min_sys, s->sigma_sys);
  const double tie_limit =
      min_sys + std::max(config.sys_tie_floor, config.sys_tie_fraction * min_sys);

  const spice::fe::ParameterScore* chosen = nullptr;
  for (const auto* s : cell) {
    if (s->sigma_sys > tie_limit) continue;
    if (chosen == nullptr || s->velocity_ns < chosen->velocity_ns) chosen = s;
  }
  SPICE_ENSURE(chosen != nullptr, "no velocity under the tie limit");
  {
    std::ostringstream line;
    line << "velocities with sigma_sys <= " << tie_limit
         << " kcal/mol are indistinguishable; slowest of them is v = " << chosen->velocity_ns
         << " A/ns";
    report.rationale.push_back(line.str());
  }
  report.best = *chosen;
  return report;
}

}  // namespace spice::core
