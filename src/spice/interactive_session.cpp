#include "spice/interactive_session.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "common/units.hpp"
#include "steering/messages.hpp"

namespace spice::core {

ExplorationReport run_exploration(spice::steering::SteerableSimulation& simulation,
                                  const ExplorationConfig& config) {
  SPICE_REQUIRE(!config.probe_forces.empty(), "exploration needs probe forces");
  SPICE_REQUIRE(config.pulse_steps > 0 && config.relax_steps > config.sample_every * 8,
                "exploration needs pulse and relaxation windows");

  ExplorationReport report;
  RunningStats response_per_force;
  RunningStats responses;
  std::vector<double> relaxation_trace;

  for (const double force : config.probe_forces) {
    SPICE_REQUIRE(force > 0.0, "probe forces must be positive");
    const double z0 = simulation.steered_com_z();

    // Pulse: constant downward force on the steered selection.
    simulation.deliver(spice::steering::SteeringMessage::apply_force({0, 0, -force}));
    simulation.run(config.pulse_steps);
    const double z_pulled = simulation.steered_com_z();
    const double response = z0 - z_pulled;  // positive when pushed down
    responses.add(std::abs(response));
    if (response > 1e-6) response_per_force.add(response / force);

    // Release and record the relaxation trace.
    simulation.deliver(spice::steering::SteeringMessage::apply_force({0, 0, 0}));
    relaxation_trace.clear();
    for (std::size_t s = 0; s < config.relax_steps; s += config.sample_every) {
      simulation.run(config.sample_every);
      relaxation_trace.push_back(simulation.steered_com_z());
    }
    // Integrated autocorrelation time of the relaxing coordinate, in
    // sampling units → ps.
    const double tau_samples = integrated_autocorrelation_time(relaxation_trace);
    const double dt = simulation.engine().config().dt;
    report.com_relaxation_ps =
        std::max(report.com_relaxation_ps,
                 tau_samples * static_cast<double>(config.sample_every) * dt);
    ++report.probes_run;
  }

  report.mobility = response_per_force.count() > 0 ? response_per_force.mean() : 0.0;
  report.mean_response_a = responses.mean();

  // v_max: an adequately sampled pull spends ≥ margin × τ per Å.
  SPICE_ENSURE(report.com_relaxation_ps > 0.0, "relaxation time came out non-positive");
  const double v_max_internal =
      1.0 / (config.sampling_margin * report.com_relaxation_ps);  // Å/ps
  report.suggested_v_max_ns = units::velocity_to_angstrom_per_ns(v_max_internal);

  // κ bracket: the spring should hold the selection against forces of the
  // probe scale over ~1 Å (lower edge /10, upper ×10, as in the haptic
  // heuristic — the two phases cross-check each other).
  const double force_scale =
      *std::max_element(config.probe_forces.begin(), config.probe_forces.end());
  const double kappa_center_pn = units::spring_to_pn_per_angstrom(force_scale);
  report.suggested_kappa_lo_pn = kappa_center_pn / 10.0;
  report.suggested_kappa_hi_pn = kappa_center_pn * 10.0;
  return report;
}

}  // namespace spice::core
