#pragma once
// Parameter selection — the decision procedure of the paper's §IV:
//
//   * κ = 10 pN/Å  : least σ_stat but largest σ_sys (spring too weak; the
//     SMD atoms are "almost un-coupled" and the sampled coordinate smears);
//   * κ = 1000 pN/Å: largest σ_stat (stiff spring transmits every thermal
//     kick into the work integral);
//   * κ = 100 pN/Å : the trade-off value;
//   * at κ = 100, v = 12.5 and 25 Å/ns give indistinguishable PMFs and
//     σ_sys, and the paper settles on (κ, v) = (100 pN/Å, 12.5 Å/ns).
//
// There is "no analytical method that provides a direct means to determine
// the best parameters" — the optimizer is explicitly a heuristic over the
// measured error decomposition, and it reports its reasoning.

#include <string>
#include <vector>

#include "fe/error_analysis.hpp"

namespace spice::core {

struct OptimizerConfig {
  /// σ_sys values within this fraction of the per-κ minimum count as
  /// indistinguishable ("insignificant difference").
  double sys_tie_fraction = 0.25;
  /// Additive floor for the tie test, kcal/mol (thermal scale).
  double sys_tie_floor = 1.0;
};

struct OptimizerReport {
  spice::fe::ParameterScore best;
  std::vector<std::string> rationale;  ///< human-readable decision trail
};

/// Apply the paper's selection rule to a sweep's scores:
///  1. pick the κ with the smallest combined √(σ_stat² + σ_sys²) averaged
///     over its velocities (the trade-off spring constant);
///  2. within that κ, find the velocities whose σ_sys is indistinguishable
///     from the best, and pick the slowest of them (slower pulls are
///     closer to the adiabatic limit, so when errors tie, take the one
///     with less systematic bias headroom).
[[nodiscard]] OptimizerReport select_optimal_parameters(
    const std::vector<spice::fe::ParameterScore>& scores, const OptimizerConfig& config = {});

}  // namespace spice::core
