#include "spice/cost_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace spice::core {

double cpu_hours_per_ns(const MdCostModel& model) {
  return model.hours_per_ns_at_reference * model.reference_processors;
}

namespace {
/// Effective speedup of `processors` relative to the reference count.
double relative_speedup(const MdCostModel& model, int processors) {
  SPICE_REQUIRE(processors > 0, "processor count must be positive");
  const double doublings =
      std::log2(static_cast<double>(processors) / model.reference_processors);
  // speed ∝ p · efficiency^(doublings beyond reference); below the
  // reference, efficiency improves symmetrically.
  return (static_cast<double>(processors) / model.reference_processors) *
         std::pow(model.efficiency_per_doubling, doublings);
}
}  // namespace

double wall_hours(const MdCostModel& model, double ns, int processors) {
  SPICE_REQUIRE(ns >= 0.0, "negative duration");
  return model.hours_per_ns_at_reference * ns / relative_speedup(model, processors);
}

double seconds_per_step(const MdCostModel& model, int processors) {
  const double steps_per_ns = 1e6 / model.timestep_fs;
  return wall_hours(model, 1.0, processors) * 3600.0 / steps_per_ns;
}

double vanilla_cpu_hours(const MdCostModel& model, double microseconds) {
  return cpu_hours_per_ns(model) * microseconds * 1000.0;
}

double frame_bytes(const MdCostModel& model) { return model.atoms * 12.0; }

SmdCampaignCost smdje_campaign_cost(const MdCostModel& model, std::size_t simulations,
                                    double ns_each, double vanilla_microseconds) {
  SPICE_REQUIRE(simulations > 0, "campaign needs simulations");
  SmdCampaignCost cost;
  cost.simulations = simulations;
  cost.ns_each = ns_each;
  cost.cpu_hours_total = cpu_hours_per_ns(model) * ns_each * simulations;
  cost.reduction_vs_vanilla =
      vanilla_cpu_hours(model, vanilla_microseconds) / cost.cpu_hours_total;
  return cost;
}

double moore_years_until_routine(const MdCostModel& model, double microseconds,
                                 double acceptable_days, double doubling_months) {
  SPICE_REQUIRE(acceptable_days > 0.0, "acceptable duration must be positive");
  const double now_hours =
      wall_hours(model, microseconds * 1000.0, model.reference_processors);
  const double target_hours = acceptable_days * 24.0;
  if (now_hours <= target_hours) return 0.0;
  const double doublings_needed = std::log2(now_hours / target_hours);
  return doublings_needed * doubling_months / 12.0;
}

}  // namespace spice::core
