#pragma once
// Mapping the SMD-JE production set onto the federated grid (paper §III):
//
//   "We used the grid infrastructure in Fig. 5, to perform to completion
//    72 parallel MD simulations in under a week with each individual
//    simulation running on 128 or 256 processors (depending upon the
//    machine used). This required approximately 75,000 CPU hours."
//
// plan_production_jobs turns a sweep definition into grid::Jobs whose
// runtimes come from the all-atom cost model (a pull of 10 Å at velocity v
// is 10/v nanoseconds of MD). execute_on_federation runs the job set
// through the DES broker against contended sites — with optional outage
// injection for the §V-C.4 security-breach scenario.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "grid/faults.hpp"
#include "grid/federation.hpp"
#include "obs/trace.hpp"
#include "spice/campaign.hpp"
#include "spice/cost_model.hpp"

namespace spice::core {

struct ProductionPlan {
  std::vector<spice::grid::Job> jobs;
  double expected_cpu_hours = 0.0;  ///< at the reference processor count
  double total_simulated_ns = 0.0;
};

/// Build the job set for a sweep. If `equal_replicas > 0` every (κ, v)
/// cell gets that many jobs (6 → the paper's 72 for a 3×4 sweep);
/// otherwise the equal-compute rule (samples ∝ v) is used. Jobs alternate
/// between 128 and 256 processors ("depending upon the machine used");
/// larger allocations run proportionally shorter wall-clock.
[[nodiscard]] ProductionPlan plan_production_jobs(const SweepConfig& sweep,
                                                  const MdCostModel& cost,
                                                  std::size_t equal_replicas = 0);

struct SiteOutage {
  std::string site;
  double start_hours = 0.0;
  double duration_hours = 0.0;
};

/// One site's scheduler state inside a progress snapshot.
struct SiteProgress {
  std::string name;
  std::size_t queued = 0;
  std::size_t running = 0;
  int free_processors = 0;
  double backlog_hours = 0.0;
  bool in_outage = false;
};

/// Mid-campaign snapshot handed to ExecutionOptions::on_progress — the
/// raw material for a mission-control dashboard frame (viz/dashboard.hpp;
/// viz cannot link grid, so this mapping lives here).
struct CampaignProgress {
  double sim_hours = 0.0;   ///< DES virtual time of the snapshot
  bool final_frame = false; ///< true for the once-at-completion call
  std::size_t requested = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t held = 0;
  std::size_t outstanding = 0;
  std::vector<SiteProgress> sites;
};

struct ExecutionOptions {
  spice::grid::BrokerPolicy policy = spice::grid::BrokerPolicy::LeastBacklog;
  std::string single_site;               ///< for BrokerPolicy::SingleSite
  std::string restrict_to_grid;          ///< "TeraGrid"/"NGS" = national allocation only
  double background_utilization = 0.7;   ///< contention on every site
  double horizon_hours = 1000.0;         ///< background-load generation window
  std::uint64_t seed = 11;
  std::optional<SiteOutage> outage;      ///< §V-C.4 scenario
  spice::grid::FaultConfig faults;       ///< seeded injection (off by default)
  spice::grid::RetryPolicy retry;        ///< backoff for requeues and holds
  double checkpoint_interval_hours = 0.0;  ///< 0 = restart from scratch
  double completion_floor = 1.0;           ///< accept ≥ this fraction of replicas
  /// When set, the DES records the campaign on this tracer's VIRTUAL
  /// timeline (one track per site + a broker track); save() the tracer
  /// afterwards to view the campaign as a Gantt chart in Perfetto. Not
  /// owned; must outlive the call.
  spice::obs::Tracer* tracer = nullptr;
  /// Mission control: when set (and progress_interval_hours > 0), called
  /// with a CampaignProgress every interval of SIMULATED time while the
  /// campaign runs, plus once at completion (final_frame = true). The DES
  /// fires the callback deterministically, so frames are reproducible.
  std::function<void(const CampaignProgress&)> on_progress;
  double progress_interval_hours = 0.0;
};

struct ProductionExecution {
  spice::grid::CampaignResult campaign;
  double makespan_hours = 0.0;
  double makespan_days = 0.0;
  std::size_t jobs_requeued = 0;  ///< jobs that survived a failure
  std::size_t checkpoint_restarts = 0;  ///< restarts that resumed banked work
  std::size_t held_dispatches = 0;      ///< dispatch attempts with no usable site
  double credited_cpu_hours = 0.0;
  double wasted_cpu_hours = 0.0;
  std::size_t shortfall = 0;   ///< replicas lost permanently
  bool degraded = false;       ///< completed under the floor, above zero loss
  bool meets_floor = true;
};

/// Run a plan on the paper's federation (build_spice_federation) under the
/// given options. Deterministic for fixed options.
[[nodiscard]] ProductionExecution execute_on_federation(const ProductionPlan& plan,
                                                        const ExecutionOptions& options);

}  // namespace spice::core
