#include "spice/campaign.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/units.hpp"
#include "obs/obs.hpp"
#include "fe/pmf.hpp"
#include "fe/wham.hpp"
#include "md/ensemble_engine.hpp"
#include "md/observables.hpp"
#include "smd/restraint.hpp"

namespace spice::core {

namespace {
/// The strand's head bead: the paper steers the C3' atom of the leading
/// nucleotide; the coarse-grained equivalent is bead 0.
constexpr std::uint32_t kHeadBead = 0;
const Vec3 kPullDirection{0.0, 0.0, -1.0};
}  // namespace

SweepConfig::SweepConfig() {
  // The sweep equilibrates one master system itself.
  system.equilibration_steps = 3000;
}

void SweepConfig::use_small_system() {
  system.dna.nucleotides = 6;
  system.equilibration_steps = 500;
}

std::size_t SweepConfig::samples_for(double velocity_ns) const {
  SPICE_REQUIRE(!velocities_ns.empty(), "sweep has no velocities");
  const double v_min = *std::min_element(velocities_ns.begin(), velocities_ns.end());
  const double scaled = static_cast<double>(samples_at_slowest) * velocity_ns / v_min;
  return std::max<std::size_t>(2, static_cast<std::size_t>(std::lround(scaled)));
}

spice::smd::PullResult run_single_pull(const spice::pore::TranslocationSystem& master,
                                       const SweepConfig& config, double kappa_pn,
                                       double velocity_ns, std::uint64_t replica_seed) {
  spice::md::Engine engine = master.engine.clone(replica_seed);

  spice::smd::SmdParams params;
  params.spring_pn_per_angstrom = kappa_pn;
  params.velocity_angstrom_per_ns = velocity_ns;
  params.direction = kPullDirection;
  params.smd_atoms = {kHeadBead};
  auto pull = std::make_shared<spice::smd::ConstantVelocityPull>(params);
  pull->attach(engine);
  engine.add_contribution(pull);

  static obs::Counter& pulls = obs::metrics().counter("campaign.pulls");
  pulls.add(1);
  return spice::smd::run_pull(engine, *pull, config.pull_distance, config.sample_every);
}

namespace {

/// One batched wave of replicas: an EnsembleEngine stepping all of them
/// through run_ensemble_pull. Replica r's trajectory is bit-identical to
/// run_single_pull(master, config, κ, v, seeds[r]) — the ensemble changes
/// the execution schedule, never the physics.
std::vector<spice::smd::PullResult> run_pull_wave(
    const spice::pore::TranslocationSystem& master, const SweepConfig& config,
    double kappa_pn, double velocity_ns, std::span<const std::uint64_t> seeds) {
  spice::md::EnsembleConfig ensemble_config;
  ensemble_config.threads = master.engine.config().threads;
  spice::md::EnsembleEngine ensemble(master.engine, seeds, ensemble_config);

  spice::smd::SmdParams params;
  params.spring_pn_per_angstrom = kappa_pn;
  params.velocity_angstrom_per_ns = velocity_ns;
  params.direction = kPullDirection;
  params.smd_atoms = {kHeadBead};

  static obs::Counter& pull_counter = obs::metrics().counter("campaign.pulls");
  std::vector<std::shared_ptr<spice::smd::ConstantVelocityPull>> pulls;
  pulls.reserve(seeds.size());
  for (std::size_t r = 0; r < seeds.size(); ++r) {
    auto pull = std::make_shared<spice::smd::ConstantVelocityPull>(params);
    pull->attach(ensemble.replica(r));
    ensemble.add_contribution(r, pull);
    pulls.push_back(std::move(pull));
    pull_counter.add(1);
  }
  return spice::smd::run_ensemble_pull(ensemble, pulls, config.pull_distance,
                                       config.sample_every);
}

}  // namespace

spice::smd::PullResult run_reverse_pull(const spice::pore::TranslocationSystem& master,
                                        const SweepConfig& config, double kappa_pn,
                                        double velocity_ns, std::uint64_t replica_seed) {
  spice::md::Engine engine = master.engine.clone(replica_seed);

  // Drag-and-equilibrate to the forward end point with a stiff restraint
  // along the same coordinate (measured from this clone's current COM).
  const Vec3 com0 = spice::md::center_of_mass(engine.positions(), engine.topology(),
                                              std::vector<std::uint32_t>{kHeadBead});
  auto hold = std::make_shared<spice::smd::StaticRestraint>(
      std::vector<std::uint32_t>{kHeadBead}, kPullDirection,
      spice::units::spring_pn_per_angstrom(kappa_pn), config.pull_distance);
  hold->attach_reference(com0);
  engine.add_contribution(hold);
  engine.step(4000);
  engine.remove_contribution(hold.get());

  // Reverse protocol: pull back along −direction for the same distance.
  spice::smd::SmdParams params;
  params.spring_pn_per_angstrom = kappa_pn;
  params.velocity_angstrom_per_ns = velocity_ns;
  params.direction = -kPullDirection;
  params.smd_atoms = {kHeadBead};
  params.hold_ps = 2.0;  // settle with the moving spring attached
  auto pull = std::make_shared<spice::smd::ConstantVelocityPull>(params);
  pull->attach(engine);
  engine.add_contribution(pull);
  return spice::smd::run_pull(engine, *pull, config.pull_distance, config.sample_every);
}

ComboResult run_combo(const spice::pore::TranslocationSystem& master, const SweepConfig& config,
                      double kappa_pn, double velocity_ns) {
  SPICE_TRACE_SCOPE_CAT("campaign.combo", "campaign");
  {
    static obs::Counter& combos = obs::metrics().counter("campaign.combos");
    combos.add(1);
  }
  ComboResult result;
  result.kappa_pn = kappa_pn;
  result.velocity_ns = velocity_ns;
  result.samples = config.samples_for(velocity_ns);

  std::vector<spice::smd::PullResult> pulls;
  pulls.reserve(result.samples);
  // Mix every seed component through SplitMix64 before combining. XOR of
  // truncated casts is NOT injective: κ values closer than the cast
  // granularity (0.125 pN/Å) mapped to the same shifted integer and gave
  // replicas of distinct combos identical trajectories. Hashing the raw
  // bit patterns keeps any κ/v distinction, however small.
  std::uint64_t combo_seed = spice::SplitMix64(config.seed).next();
  combo_seed = spice::SplitMix64(combo_seed ^ std::bit_cast<std::uint64_t>(kappa_pn)).next();
  combo_seed = spice::SplitMix64(combo_seed ^ std::bit_cast<std::uint64_t>(velocity_ns)).next();

  const double temperature = config.system.md.temperature;
  // Streaming JE diagnostics over the endpoint works; with the early-stop
  // gate armed, the fixed equal-compute count becomes a ceiling instead of
  // a quota. Pull works are deterministic given the seeds, so the stop
  // decision is identical at any thread count.
  spice::fe::ConvergenceConfig conv_config;
  conv_config.temperature_k = temperature;
  conv_config.target_error_kcal = config.early_stop_error_kcal;
  conv_config.min_samples = std::max<std::size_t>(2, config.early_stop_min_samples);
  spice::fe::ConvergenceTracker tracker(conv_config);
  static obs::Gauge& error_gauge = obs::metrics().gauge("campaign.convergence.jackknife_error");
  static obs::Gauge& ess_gauge = obs::metrics().gauge("campaign.convergence.ess");
  static obs::Counter& early_stops = obs::metrics().counter("campaign.early_stops");

  auto replica_seed_for = [combo_seed](std::size_t r) {
    return spice::SplitMix64(combo_seed ^ static_cast<std::uint64_t>(r)).next();
  };

  if (conv_config.target_error_kcal <= 0.0) {
    // Early stop disarmed: every replica runs to completion, so batch them
    // through the ensemble engine in waves. Trajectories (and therefore
    // works, PMFs, sample counts) are bit-identical to the serial loop —
    // only the execution schedule changes. The wave cap bounds the arena
    // slab and per-replica engine memory for million-sample campaigns.
    constexpr std::size_t kMaxWave = 64;
    std::vector<std::uint64_t> seeds;
    for (std::size_t base = 0; base < result.samples; base += kMaxWave) {
      const std::size_t count = std::min(kMaxWave, result.samples - base);
      seeds.clear();
      for (std::size_t r = base; r < base + count; ++r) seeds.push_back(replica_seed_for(r));
      std::vector<spice::smd::PullResult> wave =
          run_pull_wave(master, config, kappa_pn, velocity_ns, seeds);
      const std::vector<double> works =
          spice::fe::endpoint_works(wave, config.pull_distance, config.work_source);
      for (std::size_t w = 0; w < wave.size(); ++w) {
        result.md_steps += wave[w].steps;
        const spice::fe::ConvergenceState& state = tracker.add_work(works[w]);
        error_gauge.set(state.jackknife_error);
        ess_gauge.set(state.ess);
        pulls.push_back(std::move(wave[w]));
      }
    }
  } else {
    // Early stop armed: the stop decision depends on each pull's work, so
    // replicas must complete one at a time — keep the serial loop exactly.
    for (std::size_t r = 0; r < result.samples; ++r) {
      pulls.push_back(
          run_single_pull(master, config, kappa_pn, velocity_ns, replica_seed_for(r)));
      result.md_steps += pulls.back().steps;
      const spice::fe::ConvergenceState& state = tracker.add_work(spice::fe::endpoint_work(
          pulls.back(), config.pull_distance, config.work_source));
      error_gauge.set(state.jackknife_error);
      ess_gauge.set(state.ess);
      if (state.converged && pulls.size() < result.samples) {
        result.early_stopped = true;
        early_stops.add(1);
        break;
      }
    }
  }
  result.samples = pulls.size();
  result.convergence = tracker.state();
  const spice::fe::WorkEnsemble ensemble = spice::fe::grid_work_ensemble(
      pulls, config.pull_distance, config.grid_points, config.work_source);
  result.pmf =
      spice::fe::estimate_pmf(ensemble, temperature, spice::fe::Estimator::Exponential);
  result.sigma_stat = spice::fe::bootstrap_stat_error(
      ensemble, temperature, spice::fe::Estimator::Exponential, config.bootstrap_resamples,
      config.seed);
  result.mean_sigma_stat = spice::fe::average_error(result.sigma_stat);
  result.mean_dissipated_work = spice::fe::mean_dissipated_work(ensemble, temperature);
  return result;
}

spice::fe::PmfEstimate compute_reference_pmf(const spice::pore::TranslocationSystem& master,
                                             const SweepConfig& config) {
  spice::md::Engine engine = master.engine.clone(config.seed ^ 0x7265666eULL /*"refn"*/);
  const Vec3 com_reference = spice::md::center_of_mass(
      engine.positions(), engine.topology(), std::vector<std::uint32_t>{kHeadBead});

  spice::fe::UmbrellaConfig umbrella;
  umbrella.xi_min = 0.0;
  umbrella.xi_max = config.pull_distance;
  umbrella.windows = std::max<std::size_t>(11, config.grid_points);
  umbrella.kappa = 10.0;  // internal units; stiff enough for narrow windows
  umbrella.equilibration_steps = 1500;
  umbrella.sampling_steps = 6000;

  std::vector<std::uint32_t> atoms{kHeadBead};
  spice::fe::WhamResult wham_result =
      spice::fe::run_umbrella_sampling(engine, atoms, kPullDirection, com_reference, umbrella);
  // Anchor the reference at ξ = 0 like the JE estimates.
  spice::fe::shift_pmf(wham_result.pmf, 0.0);
  return wham_result.pmf;
}

SweepResult run_parameter_sweep(const SweepConfig& config, bool compute_reference) {
  SPICE_TRACE_SCOPE_CAT("campaign.parameter_sweep", "campaign");
  SPICE_REQUIRE(!config.kappas_pn.empty() && !config.velocities_ns.empty(),
                "sweep needs κ and v values");
  SweepResult result;
  result.temperature_k = config.system.md.temperature;

  // One equilibrated master configuration shared by every replica.
  spice::pore::TranslocationConfig system_config = config.system;
  system_config.md.seed = config.seed;
  const spice::pore::TranslocationSystem master =
      spice::pore::build_translocation_system(system_config);

  for (const double kappa : config.kappas_pn) {
    for (const double velocity : config.velocities_ns) {
      result.combos.push_back(run_combo(master, config, kappa, velocity));
    }
  }

  if (compute_reference) {
    result.reference = compute_reference_pmf(master, config);
    result.has_reference = true;
    for (const auto& combo : result.combos) {
      spice::fe::ParameterScore score;
      score.kappa_pn = combo.kappa_pn;
      score.velocity_ns = combo.velocity_ns;
      score.samples = combo.samples;
      score.sigma_stat = combo.mean_sigma_stat;
      score.sigma_sys = spice::fe::systematic_error(combo.pmf, result.reference);
      result.scores.push_back(score);
    }
  }
  return result;
}

}  // namespace spice::core
