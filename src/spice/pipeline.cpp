#include "spice/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/trace.hpp"
#include "grid/federation.hpp"
#include "net/network.hpp"
#include "pore/system.hpp"
#include "steering/haptic.hpp"
#include "steering/registry.hpp"
#include "steering/steerable.hpp"
#include "viz/ascii_render.hpp"

namespace spice::core {

StaticAnalysisReport run_static_analysis(const PipelineConfig& config) {
  SPICE_TRACE_SCOPE_CAT("pipeline.static_analysis", "pipeline");
  SPICE_INFO("phase 1: static visualization / structural analysis");
  StaticAnalysisReport report;
  const spice::pore::RadiusProfile profile = spice::pore::hemolysin_profile();
  const auto constriction = profile.constriction();
  report.constriction_z = constriction.z;
  report.constriction_radius = constriction.radius;
  report.vestibule_radius = profile.radius(30.0);
  report.barrel_radius = profile.radius(-25.0);

  spice::pore::TranslocationConfig system_config = config.sweep.system;
  system_config.md.seed = config.seed;
  system_config.equilibration_steps = 0;
  const auto system = spice::pore::build_translocation_system(system_config);
  report.rendering =
      spice::viz::render_side_view(system.pore->profile(), system.engine.positions());
  return report;
}

InteractiveReport run_interactive_phase(const PipelineConfig& config) {
  SPICE_TRACE_SCOPE_CAT("pipeline.interactive", "pipeline");
  SPICE_INFO("phase 2: interactive MD with visualization and haptics");
  InteractiveReport report;

  // Co-schedule simulation processors + visualization + lightpath.
  {
    spice::grid::EventQueue events;
    spice::grid::Federation federation(events);
    spice::grid::build_spice_federation(federation);
    spice::grid::CoScheduleRequest request;
    request.requirements.push_back({federation.find("NCSA"),
                                    static_cast<int>(config.interactive_processors),
                                    config.use_lightpath});
    request.requirements.push_back({federation.find("Manchester"), 16, config.use_lightpath});
    request.duration_hours = 4.0;
    const auto outcome = spice::grid::reserve_common_window(request, "spice-interactive");
    report.coschedule_feasible = outcome.feasible;
    report.coschedule_start_hours = outcome.start;
  }

  // Network: simulation at NCSA, visualizer + haptics at UCL.
  spice::net::Network network(config.seed);
  const auto sim_host = network.add_host("namd-sim", "NCSA");
  const auto viz_host = network.add_host("ucl-viz", "UCL");
  const spice::net::QosSpec qos = config.use_lightpath
                                      ? spice::net::lightpath_transatlantic()
                                      : spice::net::production_internet_transatlantic();
  network.connect_sites("NCSA", "UCL", qos);
  report.network_used = qos.name;

  // The registry round-trip of Fig. 2a: components find each other by name.
  spice::steering::ServiceRegistry registry;
  registry.publish({"namd-sim", spice::steering::ComponentKind::Simulation, sim_host});
  registry.publish({"ucl-viz", spice::steering::ComponentKind::Visualizer, viz_host});

  // Real (coarse-grained) engine behind the steering interface.
  spice::pore::TranslocationConfig system_config = config.sweep.system;
  system_config.md.seed = config.seed ^ 0x696d64ULL /*"imd"*/;
  system_config.equilibration_steps = 500;
  auto system = spice::pore::build_translocation_system(system_config);
  const std::vector<std::uint32_t> steered{system.dna_selection.front()};
  spice::steering::SteerableSimulation simulation(std::move(system.engine), steered);

  spice::steering::ImdConfig imd;
  imd.total_steps = config.imd_steps;
  imd.seconds_per_step =
      seconds_per_step(config.cost, static_cast<int>(config.interactive_processors));
  imd.frame_bytes = frame_bytes(config.cost);

  spice::steering::HapticDevice haptic({.seed = config.seed});
  spice::steering::ImdSession session(network, sim_host, viz_host, imd, &simulation);
  session.set_visualizer_policy(haptic.as_policy());
  report.imd = session.run();

  report.mean_haptic_force = haptic.force_log().mean();
  const double center = haptic.suggested_spring_pn();
  report.suggested_kappa_lo_pn = center / 10.0;
  report.suggested_kappa_hi_pn = center * 10.0;

  // Scripted force-pulse probes (the rest of the phase-2 methodology):
  // relaxation time ⇒ the fastest defensible pulling velocity.
  report.exploration = run_exploration(simulation);

  // Final per-contribution energy breakdown (pore vs steering force).
  report.external_energies = simulation.engine().compute_energies().external_terms;
  return report;
}

PreprocessingReport run_preprocessing_phase(const PipelineConfig& config) {
  SPICE_TRACE_SCOPE_CAT("pipeline.preprocessing", "pipeline");
  SPICE_INFO("phase 3: preprocessing simulations (coarse sweep)");
  PreprocessingReport report;
  SweepConfig coarse = config.sweep;
  coarse.samples_at_slowest = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(config.sweep.samples_at_slowest *
                                              config.preprocessing_fraction)));
  coarse.bootstrap_resamples = std::max<std::size_t>(16, config.sweep.bootstrap_resamples / 2);
  coarse.seed = config.seed ^ 0x70726570ULL /*"prep"*/;
  report.sweep = run_parameter_sweep(coarse, /*compute_reference=*/false);

  // Screen: a κ whose dissipated work explodes at every velocity is
  // hopeless; keep κ values whose best cell dissipates less than the
  // sweep-wide median + kT-scale slack. With the paper's three κ values
  // all three typically survive — the screen is the safety net.
  std::vector<double> dissipated;
  for (const auto& combo : report.sweep.combos) dissipated.push_back(combo.mean_dissipated_work);
  std::sort(dissipated.begin(), dissipated.end());
  const double median = dissipated[dissipated.size() / 2];
  for (const double kappa : coarse.kappas_pn) {
    double best_cell = std::numeric_limits<double>::infinity();
    for (const auto& combo : report.sweep.combos) {
      if (combo.kappa_pn == kappa) best_cell = std::min(best_cell, combo.mean_dissipated_work);
    }
    if (best_cell <= median * 4.0 + 5.0) report.retained_kappas_pn.push_back(kappa);
  }
  SPICE_ENSURE(!report.retained_kappas_pn.empty(), "preprocessing rejected every kappa");
  return report;
}

ProductionReport run_production_phase(const PipelineConfig& config,
                                      const PreprocessingReport& preprocessing) {
  SPICE_TRACE_SCOPE_CAT("pipeline.production", "pipeline");
  SPICE_INFO("phase 4: production sweep on the federated grid");
  ProductionReport report;

  SweepConfig production = config.sweep;
  production.kappas_pn = preprocessing.retained_kappas_pn;
  report.sweep = run_parameter_sweep(production, /*compute_reference=*/true);
  report.optimal = select_optimal_parameters(report.sweep.scores);

  report.plan = plan_production_jobs(production, config.cost, config.paper_replicas_per_cell);
  ExecutionOptions exec = config.execution;
  exec.seed = config.seed;
  report.execution = execute_on_federation(report.plan, exec);

  report.cost = smdje_campaign_cost(config.cost, report.plan.jobs.size(),
                                    report.plan.total_simulated_ns /
                                        static_cast<double>(report.plan.jobs.size()),
                                    /*vanilla_microseconds=*/10.0);
  return report;
}

PipelineReport run_full_pipeline(const PipelineConfig& config) {
  SPICE_TRACE_SCOPE_CAT("pipeline.full", "pipeline");
  PipelineReport report;
  report.statics = run_static_analysis(config);
  report.interactive = run_interactive_phase(config);
  report.preprocessing = run_preprocessing_phase(config);
  report.production = run_production_phase(config, report.preprocessing);
  return report;
}

}  // namespace spice::core
