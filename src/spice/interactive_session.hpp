#pragma once
// Scripted interactive exploration — the paper's phase-2 *methodology*:
//
//   "These initial simulations along with real-time interactive tools are
//    used to develop a qualitative understanding of the forces and the
//    DNA's response to forces. This qualitative understanding helps in
//    choosing the initial range of parameters over which we will try to
//    find the optimal value." (§III)
//
// The human explorations are replaced by deterministic probe protocols on
// a steerable simulation:
//
//   * force-pulse probes — apply a constant steering force, watch the COM
//     respond, release, watch it relax: yields the strand's mobility
//     (response per unit force) and its relaxation time;
//   * from the relaxation time, a maximum defensible pulling velocity
//     (pulls slower than ~Å per few relaxation times sample adequately —
//     exactly the criterion behind the paper's v range);
//   * from the force scale needed to move the strand, a κ bracket (the
//     spring must dominate the felt forces over ~1 Å).

#include <cstdint>
#include <vector>

#include "steering/steerable.hpp"

namespace spice::core {

struct ExplorationConfig {
  std::vector<double> probe_forces = {10.0, 20.0, 40.0};  ///< kcal/mol/Å, applied along −z
  std::size_t pulse_steps = 1500;    ///< steps with the force on
  std::size_t relax_steps = 2500;    ///< steps observing the relaxation
  std::size_t sample_every = 10;     ///< COM sampling stride during relaxation
  /// Safety factor: pulling slower than (1 Å per `sampling_margin`
  /// relaxation times) counts as adequately sampled.
  double sampling_margin = 5.0;
};

struct ExplorationReport {
  double com_relaxation_ps = 0.0;   ///< COM z autocorrelation time after release
  double mobility = 0.0;            ///< Å of COM response per (kcal/mol/Å) of force
  double mean_response_a = 0.0;     ///< mean |Δz| over the probe pulses
  double suggested_v_max_ns = 0.0;  ///< Å/ns; faster pulls under-sample
  double suggested_kappa_lo_pn = 0.0;
  double suggested_kappa_hi_pn = 0.0;
  std::size_t probes_run = 0;
};

/// Run the probe protocol on `simulation` (state advances; callers give it
/// a dedicated clone). Deterministic for a fixed engine seed.
[[nodiscard]] ExplorationReport run_exploration(
    spice::steering::SteerableSimulation& simulation, const ExplorationConfig& config = {});

}  // namespace spice::core
