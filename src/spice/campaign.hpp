#pragma once
// The SPICE science campaign: the (κ, v) parameter sweep of Fig. 4.
//
// For each spring constant κ ∈ {10, 100, 1000} pN/Å and pulling velocity
// v ∈ {12.5, 25, 50, 100} Å/ns, an ensemble of SMD pulls is run over the
// paper's 10 Å sub-trajectory near the pore centre and the PMF estimated
// with the Jarzynski exponential average.
//
// Cost normalization (§IV-C): "In the computational time that one sample
// at a v of 12.5 Å/ns can be generated, eight samples at a v of 100 Å/ns
// can be generated." The sweep therefore allocates sample counts
// proportional to v, so every (κ, v) cell burns the same compute and the
// bootstrap σ_stat values are directly comparable across cells.
//
// All replicas of a sweep start from ONE equilibrated configuration
// (Engine::clone with per-replica stochastic seeds), mirroring the paper's
// common initial structure and giving every trajectory the same reaction-
// coordinate origin.

#include <cstdint>
#include <vector>

#include "fe/convergence.hpp"
#include "fe/error_analysis.hpp"
#include "fe/jarzynski.hpp"
#include "pore/system.hpp"
#include "smd/pulling.hpp"

namespace spice::core {

struct SweepConfig {
  std::vector<double> kappas_pn = {10.0, 100.0, 1000.0};
  std::vector<double> velocities_ns = {12.5, 25.0, 50.0, 100.0};
  double pull_distance = 10.0;       ///< the paper's sub-trajectory length, Å
  std::size_t grid_points = 21;      ///< λ-grid resolution of the PMF
  std::size_t samples_at_slowest = 2;  ///< replicas at min(v); counts scale ∝ v
  std::size_t sample_every = 300;    ///< pull-recorder (SMD force output) stride, steps (~3 ps)
  /// Work definition used for the JE analysis. SampledForce reproduces the
  /// original workflow (work integrated offline from the SMD force series)
  /// and with it the paper's stiff-spring noise; Accumulated is the
  /// numerically ideal alternative (used by the ablation bench).
  spice::fe::WorkSource work_source = spice::fe::WorkSource::SampledForce;
  std::size_t bootstrap_resamples = 64;
  /// Convergence-gated early stop: when > 0, a combo stops adding replicas
  /// as soon as the streaming JE jackknife error at λ_max (fe::
  /// ConvergenceTracker) drops to this level (kcal/mol). The fixed
  /// equal-compute counts from samples_for() remain the ceiling, so early
  /// stop can only SAVE compute, never spend more. <= 0 (default) keeps
  /// the fixed-replica behaviour exactly.
  double early_stop_error_kcal = 0.0;
  /// Floor on replicas before the early-stop predicate may fire.
  std::size_t early_stop_min_samples = 4;
  std::uint64_t seed = 2005;
  spice::pore::TranslocationConfig system;  ///< base system; equilibrated once

  SweepConfig();

  /// Replica count for a velocity under the equal-compute rule.
  [[nodiscard]] std::size_t samples_for(double velocity_ns) const;

  /// Shrink the system for fast unit tests: a 6-bead strand and a short
  /// equilibration. Science benches use the full default system.
  void use_small_system();
};

/// One (κ, v) cell of Fig. 4.
struct ComboResult {
  double kappa_pn = 0.0;
  double velocity_ns = 0.0;
  std::size_t samples = 0;
  spice::fe::PmfEstimate pmf;             ///< JE exponential estimate
  std::vector<double> sigma_stat;         ///< bootstrap error per λ point
  double mean_sigma_stat = 0.0;
  double mean_dissipated_work = 0.0;      ///< ⟨W⟩ − ΔF at λ_max, kcal/mol
  std::uint64_t md_steps = 0;             ///< compute actually spent
  /// Streaming diagnostics after the last pull (ΔF, σ_jack, Kish ESS, ...).
  spice::fe::ConvergenceState convergence;
  /// True when the convergence gate stopped the combo below its replica
  /// budget (always false with early_stop_error_kcal <= 0).
  bool early_stopped = false;
};

struct SweepResult {
  std::vector<ComboResult> combos;
  spice::fe::PmfEstimate reference;       ///< umbrella/WHAM equilibrium PMF
  bool has_reference = false;
  std::vector<spice::fe::ParameterScore> scores;  ///< filled when reference present
  double temperature_k = 300.0;
};

/// Run one SMD pull: clone the equilibrated master with `replica_seed`,
/// attach a (κ, v) spring to the strand's head bead, pull along −z.
[[nodiscard]] spice::smd::PullResult run_single_pull(
    const spice::pore::TranslocationSystem& master, const SweepConfig& config, double kappa_pn,
    double velocity_ns, std::uint64_t replica_seed);

/// Run one Fig. 4 cell against an equilibrated master system.
[[nodiscard]] ComboResult run_combo(const spice::pore::TranslocationSystem& master,
                                    const SweepConfig& config, double kappa_pn,
                                    double velocity_ns);

/// Run one REVERSE pull (the time-reversed protocol for Crooks/BAR): the
/// replica is first equilibrated with a stiff restraint at the forward
/// end point ξ = pull_distance, then pulled back toward ξ = 0 at (κ, v).
/// The returned result's work is the reverse-protocol work W_R.
[[nodiscard]] spice::smd::PullResult run_reverse_pull(
    const spice::pore::TranslocationSystem& master, const SweepConfig& config, double kappa_pn,
    double velocity_ns, std::uint64_t replica_seed);

/// Equilibrium reference PMF over the same coordinate (umbrella + WHAM).
[[nodiscard]] spice::fe::PmfEstimate compute_reference_pmf(
    const spice::pore::TranslocationSystem& master, const SweepConfig& config);

/// The full sweep: equilibrate one master, run every (κ, v) cell, compute
/// the WHAM reference and per-cell (σ_stat, σ_sys) scores.
[[nodiscard]] SweepResult run_parameter_sweep(const SweepConfig& config,
                                              bool compute_reference = true);

}  // namespace spice::core
