#pragma once
// The end-to-end SPICE pipeline — §III "Simulation Method and Analysis":
//
//   Phase 1  Static visualization: structural features of the pore
//            (constriction, vestibule, barrel) from the lumen profile.
//   Phase 2  Interactive MD: a 256-processor simulation coupled to a
//            remote visualizer + haptic device over a co-scheduled
//            lightpath; brackets the (κ, v) search ranges.
//   Phase 3  Preprocessing simulations: a coarse sweep that narrows the
//            parameter set.
//   Phase 4  Production: the full Fig. 4 sweep — mapped onto the federated
//            grid (72 jobs, ~75k CPU-hours) — followed by the σ_stat/σ_sys
//            analysis and the optimal-parameter selection.
//
// Every phase produces a typed report; run_full_pipeline stitches them
// into a PipelineReport (the programmatic equivalent of the paper's §IV).

#include <cstdint>
#include <string>
#include <vector>

#include "grid/coscheduling.hpp"
#include "spice/campaign.hpp"
#include "spice/cost_model.hpp"
#include "spice/interactive_session.hpp"
#include "spice/optimizer.hpp"
#include "spice/production.hpp"
#include "steering/imd.hpp"

namespace spice::core {

struct PipelineConfig {
  SweepConfig sweep;  ///< production-phase sweep definition
  MdCostModel cost;
  std::uint64_t seed = 2005;

  // Interactive phase:
  std::size_t imd_steps = 1200;
  std::size_t interactive_processors = 256;  ///< §III: "typically ... 256"
  bool use_lightpath = true;

  // Preprocessing phase: fraction of the production sampling effort.
  double preprocessing_fraction = 0.5;

  // Production grid execution:
  std::size_t paper_replicas_per_cell = 6;  ///< 3κ × 4v × 6 = 72 jobs
  ExecutionOptions execution;
};

struct StaticAnalysisReport {
  double constriction_z = 0.0;
  double constriction_radius = 0.0;
  double vestibule_radius = 0.0;
  double barrel_radius = 0.0;
  std::string rendering;  ///< ASCII side view of the initial system
};

struct InteractiveReport {
  bool coschedule_feasible = false;
  double coschedule_start_hours = 0.0;
  spice::steering::ImdMetrics imd;
  double mean_haptic_force = 0.0;      ///< kcal/mol/Å
  double suggested_kappa_lo_pn = 0.0;  ///< bracket for the sweep
  double suggested_kappa_hi_pn = 0.0;
  std::string network_used;
  /// Scripted force-pulse exploration (§III: "an estimate of force values
  /// as well as ... suitable constraints"): relaxation time, mobility and
  /// the defensible velocity range for the sweep.
  ExplorationReport exploration;
  /// Per-contribution external potential energies at the end of the
  /// interactive session (pore confinement vs steering force), kcal/mol.
  std::vector<spice::md::ExternalEnergy> external_energies;
};

struct PreprocessingReport {
  SweepResult sweep;  ///< coarse, reference-free
  /// κ values retained for production (dissipated-work screen).
  std::vector<double> retained_kappas_pn;
};

struct ProductionReport {
  SweepResult sweep;            ///< the science result (Fig. 4 data)
  OptimizerReport optimal;      ///< §IV conclusion
  ProductionPlan plan;          ///< the 72-job grid mapping
  ProductionExecution execution;  ///< DES run on the federation
  SmdCampaignCost cost;         ///< vs vanilla MD (§I)
};

struct PipelineReport {
  StaticAnalysisReport statics;
  InteractiveReport interactive;
  PreprocessingReport preprocessing;
  ProductionReport production;
};

[[nodiscard]] StaticAnalysisReport run_static_analysis(const PipelineConfig& config);
[[nodiscard]] InteractiveReport run_interactive_phase(const PipelineConfig& config);
[[nodiscard]] PreprocessingReport run_preprocessing_phase(const PipelineConfig& config);
[[nodiscard]] ProductionReport run_production_phase(const PipelineConfig& config,
                                                    const PreprocessingReport& preprocessing);

/// All four phases in sequence.
[[nodiscard]] PipelineReport run_full_pipeline(const PipelineConfig& config);

}  // namespace spice::core
