#include "net/qos.hpp"

namespace spice::net {

QosSpec lightpath_transatlantic() {
  return {.name = "lightpath-transatlantic",
          .latency_ms = 45.0,
          .jitter_ms = 0.05,
          .loss_rate = 1e-6,
          .bandwidth_mbps = 10000.0};
}

QosSpec production_internet_transatlantic() {
  // Sustained single-flow TCP over a ~110 ms RTT path with real loss was a
  // few Mbit/s in 2005 (Mathis: rate ≈ MSS/RTT · 1.22/√p); 8 Mbit/s is a
  // generous multi-stream figure.
  return {.name = "internet-transatlantic",
          .latency_ms = 55.0,
          .jitter_ms = 12.0,
          .loss_rate = 0.003,
          .bandwidth_mbps = 8.0};
}

QosSpec congested_internet() {
  return {.name = "internet-congested",
          .latency_ms = 80.0,
          .jitter_ms = 40.0,
          .loss_rate = 0.02,
          .bandwidth_mbps = 2.0};
}

QosSpec local_area() {
  return {.name = "lan",
          .latency_ms = 0.1,
          .jitter_ms = 0.01,
          .loss_rate = 1e-7,
          .bandwidth_mbps = 10000.0};
}

}  // namespace spice::net
