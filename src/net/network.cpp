#include "net/network.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spice::net {

Network::Network(std::uint64_t seed) : intra_site_(local_area()), rng_(Rng::stream(seed, 0x6e6574)) {}

HostId Network::add_host(const std::string& name, const std::string& site, bool hidden_ip) {
  SPICE_REQUIRE(!site.empty(), "host needs a site");
  hosts_.push_back(Host{name, site, hidden_ip});
  return static_cast<HostId>(hosts_.size() - 1);
}

void Network::set_site_gateway(const std::string& site, double capacity_mbps) {
  SPICE_REQUIRE(capacity_mbps > 0.0, "gateway capacity must be positive");
  gateways_[site] = Gateway{capacity_mbps, 0.0, 0, 0.0};
}

namespace {
std::string link_key(const std::string& a, const std::string& b) {
  return a < b ? a + "|" + b : b + "|" + a;
}
}  // namespace

void Network::connect_sites(const std::string& site_a, const std::string& site_b,
                            const QosSpec& qos) {
  SPICE_REQUIRE(site_a != site_b, "use set_intra_site_qos for intra-site traffic");
  site_links_[link_key(site_a, site_b)] = qos;
}

const Host& Network::host(HostId id) const {
  SPICE_REQUIRE(id < hosts_.size(), "unknown host");
  return hosts_[id];
}

const Gateway* Network::site_gateway(const std::string& site) const {
  const auto it = gateways_.find(site);
  return it == gateways_.end() ? nullptr : &it->second;
}

PathKind Network::classify_path(HostId from, HostId to) const {
  const Host& src = host(from);
  const Host& dst = host(to);
  if (from == to) return PathKind::Loopback;
  if (src.site == dst.site) return PathKind::Direct;  // same site: private net
  if (!dst.hidden_ip) return PathKind::Direct;
  if (gateways_.contains(dst.site)) return PathKind::ViaGateway;
  return PathKind::Unreachable;
}

void Network::add_degradation_window(const DegradationWindow& window) {
  SPICE_REQUIRE(window.end_s > window.start_s, "degradation window empty");
  SPICE_REQUIRE(window.latency_factor >= 1.0, "latency factor must be >= 1");
  SPICE_REQUIRE(window.loss_add >= 0.0, "loss increase must be non-negative");
  degradations_.push_back(window);
}

QosSpec Network::effective_qos(const QosSpec& qos, double t) const {
  QosSpec out = qos;
  for (const auto& w : degradations_) {
    if (t < w.start_s || t >= w.end_s) continue;
    out.latency_ms *= w.latency_factor;
    out.jitter_ms *= w.latency_factor;
    out.loss_rate = std::min(0.95, out.loss_rate + w.loss_add);
  }
  return out;
}

const QosSpec& Network::qos_between(const Host& a, const Host& b) const {
  if (a.site == b.site) return intra_site_;
  const auto it = site_links_.find(link_key(a.site, b.site));
  SPICE_REQUIRE(it != site_links_.end(),
                "no link configured between sites " + a.site + " and " + b.site);
  return it->second;
}

double Network::hop_deliver(double start, const QosSpec& base_qos, double bytes,
                            const std::string& link_key, std::uint32_t& retransmits,
                            bool& gave_up) {
  QosSpec degraded;
  const QosSpec* active = &base_qos;
  if (!degradations_.empty()) {
    degraded = effective_qos(base_qos, start);
    active = &degraded;
  }
  const QosSpec& qos = *active;
  const double transmission = bytes * 8.0 / (qos.bandwidth_mbps * 1e6);  // s
  const double rto = 3.0 * qos.latency_ms * 1e-3;
  double t = start;
  for (std::uint32_t attempt = 0; attempt <= kMaxRetries; ++attempt) {
    // Serialize the transmission on the shared directed pipe: offered load
    // above the link rate queues here.
    if (!link_key.empty()) {
      double& busy = link_busy_[link_key];
      const double tx_start = std::max(t, busy);
      busy = tx_start + transmission;
      t = tx_start + transmission;
    } else {
      t += transmission;
    }
    const double jittered =
        std::max(0.0, rng_.gaussian(qos.latency_ms, qos.jitter_ms)) * 1e-3;
    if (!rng_.bernoulli(qos.loss_rate)) {
      return t + jittered;
    }
    ++stats_.losses;
    ++retransmits;
    t += rto;
  }
  gave_up = true;
  return t;
}

SendOutcome Network::send(double now, HostId from, HostId to, double bytes,
                          Transport transport) {
  SPICE_REQUIRE(bytes >= 0.0, "negative message size");
  ++stats_.messages;
  SendOutcome out;
  out.path = classify_path(from, to);

  if (out.path == PathKind::Loopback) {
    out.delivered = true;
    out.deliver_at = now;
    ++stats_.delivered;
    return out;
  }
  if (out.path == PathKind::Unreachable) {
    out.failure = "destination host has a hidden IP address and its site has no gateway";
    ++stats_.undeliverable;
    return out;
  }
  if (out.path == PathKind::ViaGateway && transport == Transport::Udp) {
    // The PSC gateway solution "does not support UDP-based traffic".
    out.failure = "gateway does not forward UDP traffic";
    ++stats_.undeliverable;
    return out;
  }

  const Host& src = host(from);
  const Host& dst = host(to);
  const QosSpec& qos = qos_between(src, dst);

  bool gave_up = false;
  const std::string link_key =
      src.site == dst.site ? std::string{} : src.site + ">" + dst.site;
  double t = hop_deliver(now, qos, bytes, link_key, out.retransmits, gave_up);
  if (gave_up) {
    out.failure = "retry limit exceeded on lossy path " + qos.name;
    ++stats_.undeliverable;
    return out;
  }

  if (out.path == PathKind::ViaGateway) {
    // Store-and-forward through the site gateway: FIFO over its capacity,
    // then a LAN hop to the hidden host.
    Gateway& gw = gateways_[dst.site];
    const double start = std::max(t, gw.busy_until);
    gw.total_queue_delay += start - t;
    const double forward = bytes * 8.0 / (gw.capacity_mbps * 1e6);
    gw.busy_until = start + forward;
    ++gw.forwarded;
    t = start + forward;
    bool lan_gave_up = false;
    t = hop_deliver(t, intra_site_, bytes, {}, out.retransmits, lan_gave_up);
    if (lan_gave_up) {
      out.failure = "retry limit exceeded on gateway LAN hop";
      ++stats_.undeliverable;
      return out;
    }
  }

  // Per-flow FIFO: a message cannot overtake an earlier one.
  const std::uint64_t flow = (static_cast<std::uint64_t>(from) << 32) | to;
  auto& last = last_delivery_[flow];
  t = std::max(t, last);
  last = t;

  out.delivered = true;
  out.deliver_at = t;
  ++stats_.delivered;
  stats_.total_latency += t - now;
  return out;
}

}  // namespace spice::net
