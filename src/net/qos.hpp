#pragma once
// Network quality-of-service specification.
//
// The paper (§II–III) argues interactive MD needs networks with "well
// bounded quality of service in terms of packet latency, jitter and packet
// loss", provided in 2005 by optical lightpaths (UKLight / GLIF) — the
// general-purpose internet was "not acceptable". These specs parameterize
// the message-delivery model in spice::net::Network; the presets encode a
// trans-Atlantic lightpath, the production internet of the era, and a LAN.

#include <string>

namespace spice::net {

struct QosSpec {
  std::string name = "link";
  double latency_ms = 1.0;      ///< one-way propagation, mean
  double jitter_ms = 0.1;       ///< one-way delay stddev (truncated normal)
  double loss_rate = 0.0;       ///< per-message loss probability
  double bandwidth_mbps = 1000; ///< per-flow throughput
};

// Degradation-window semantics (net::Network::add_degradation_window):
// every window active at a transmission's start time applies to the base
// QosSpec — latency and jitter are MULTIPLIED by each window's
// latency_factor, loss_add values are SUMMED onto loss_rate (clamped to
// 0.95 so retransmission always has a chance). Overlapping windows
// therefore stack: two ×2 latency windows yield ×4, and because products
// and sums commute, the effective QoS is independent of the order in
// which the windows were registered. Bandwidth is never degraded — the
// model targets WAN congestion/flap (delay and loss), not link rewiring.

/// Dedicated trans-Atlantic lightpath (UKLight → TeraGrid via GLIF):
/// speed-of-light latency, negligible jitter and loss, 10 Gbit.
[[nodiscard]] QosSpec lightpath_transatlantic();

/// Production internet path between the UK and the US circa 2005:
/// similar base latency but heavy jitter and real packet loss, shared
/// bandwidth.
[[nodiscard]] QosSpec production_internet_transatlantic();

/// Congested production path (worst case in the paper's argument).
[[nodiscard]] QosSpec congested_internet();

/// Same-machine-room link (simulation co-located with the visualizer —
/// the baseline the paper says is "rather unlikely" to be available).
[[nodiscard]] QosSpec local_area();

}  // namespace spice::net
