#pragma once
// Message-level network simulator with hidden-IP addressing and gateway
// forwarding.
//
// Models exactly the phenomena §V-C.1 of the paper reports:
//   * hosts on "hidden IP" (private) addresses are unreachable from other
//     sites unless their site operates a gateway (the PSC qsocket /
//     Access Gateway Node solution);
//   * gateways do not forward UDP ("it does not support UDP-based
//     traffic");
//   * "routing multiple processes through single, or even a few, gateway
//     nodes can present a bottleneck" — the gateway is a FIFO store-and-
//     forward stage with finite capacity shared by all flows.
//
// Delivery timing per attempt: propagation (latency + truncated-normal
// jitter) + transmission (bytes / bandwidth); lost messages (Bernoulli)
// are retransmitted after an RTO of 3× latency, up to a retry cap.
// Per-flow FIFO ordering is enforced. The caller supplies current time;
// calls must be non-decreasing in time per network instance.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/qos.hpp"

namespace spice::net {

using HostId = std::uint32_t;

enum class Transport { Tcp, Udp };

struct Host {
  std::string name;
  std::string site;
  bool hidden_ip = false;  ///< private address; needs a gateway to be reached
};

struct Gateway {
  double capacity_mbps = 1000.0;
  double busy_until = 0.0;       ///< store-and-forward FIFO occupancy
  std::uint64_t forwarded = 0;
  double total_queue_delay = 0.0;
};

enum class PathKind { Loopback, Direct, ViaGateway, Unreachable };

struct SendOutcome {
  bool delivered = false;
  double deliver_at = 0.0;  ///< absolute time, seconds
  std::uint32_t retransmits = 0;
  PathKind path = PathKind::Unreachable;
  std::string failure;  ///< non-empty when !delivered
};

/// Transient degradation of every path: within [start_s, end_s) latency and
/// jitter are scaled and extra loss is added — the fault-injection model of
/// a congested or flapping WAN segment (§V-C.1 middleware immaturity).
struct DegradationWindow {
  double start_s = 0.0;
  double end_s = 0.0;
  double latency_factor = 1.0;  ///< multiplies latency and jitter
  double loss_add = 0.0;        ///< added to the per-message loss rate
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t delivered = 0;
  std::uint64_t losses = 0;        ///< individual lost transmissions
  std::uint64_t undeliverable = 0; ///< unreachable or retry-cap exceeded
  double total_latency = 0.0;      ///< sum of (deliver_at − send time), s
};

class Network {
 public:
  explicit Network(std::uint64_t seed);

  HostId add_host(const std::string& name, const std::string& site, bool hidden_ip = false);

  /// Give `site` a gateway so its hidden hosts are reachable (TCP only).
  void set_site_gateway(const std::string& site, double capacity_mbps);

  /// Set the QoS of the (symmetric) path between two sites. Hosts within
  /// one site communicate at `intra_site` QoS (default LAN).
  void connect_sites(const std::string& site_a, const std::string& site_b, const QosSpec& qos);
  void set_intra_site_qos(const QosSpec& qos) { intra_site_ = qos; }

  /// Register a transient degradation window (applies to every path whose
  /// transmission starts inside it). Windows may overlap; effects stack —
  /// latency factors multiply, loss_adds sum (clamped to 0.95), so the
  /// result is independent of registration order (see qos.hpp).
  void add_degradation_window(const DegradationWindow& window);
  [[nodiscard]] const std::vector<DegradationWindow>& degradation_windows() const {
    return degradations_;
  }

  /// Send `bytes` from one host to another at absolute time `now` (s).
  SendOutcome send(double now, HostId from, HostId to, double bytes,
                   Transport transport = Transport::Tcp);

  [[nodiscard]] const Host& host(HostId id) const;
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] const Gateway* site_gateway(const std::string& site) const;

  /// True if `from` can address `to` at all (public target, same site, or
  /// gatewayed site).
  [[nodiscard]] PathKind classify_path(HostId from, HostId to) const;

  static constexpr std::uint32_t kMaxRetries = 12;

 private:
  [[nodiscard]] const QosSpec& qos_between(const Host& a, const Host& b) const;
  /// The QoS actually in force at time `t`: `qos` degraded by any active
  /// windows.
  [[nodiscard]] QosSpec effective_qos(const QosSpec& qos, double t) const;
  /// Absolute delivery time over one QoS hop starting at `start`, with
  /// transmission serialized on the directed link (`link_key`, empty =
  /// unserialized) and loss/retransmission; sets gave_up when the retry
  /// cap is hit.
  [[nodiscard]] double hop_deliver(double start, const QosSpec& qos, double bytes,
                                   const std::string& link_key, std::uint32_t& retransmits,
                                   bool& gave_up);

  std::vector<Host> hosts_;
  std::unordered_map<std::string, Gateway> gateways_;
  std::unordered_map<std::string, QosSpec> site_links_;  ///< key "a|b", a < b
  QosSpec intra_site_;
  std::vector<DegradationWindow> degradations_;
  Rng rng_;
  NetworkStats stats_;
  /// FIFO enforcement: last delivery time per directed (from,to) pair.
  std::unordered_map<std::uint64_t, double> last_delivery_;
  /// Link serialization: transmissions on a directed site-pair share the
  /// pipe; key "src>dst". An offered load above the link bandwidth builds
  /// a real queue here — the mechanism behind IMD stalls on slow paths.
  std::unordered_map<std::string, double> link_busy_;
};

}  // namespace spice::net
