#pragma once
// Cross-site MPI job model (the MPICH-G2 scenario of §V-C.1).
//
// The paper's sister projects (NEKTAR, Vortonics) ran "a single code
// instance running on several resources of a federated grid", i.e. one
// MPI job spanning sites, and the paper singles out MPI applications as
// the ones that "fall particular prey to hidden IP addresses". This model
// captures the two first-order effects:
//
//   * feasibility — every rank pair that must communicate needs a route;
//     hidden-IP ranks without a gateway make the whole job unplaceable;
//   * performance — each iteration is compute + halo exchange (ring
//     neighbours) + allreduce (binomial tree); any stage that crosses the
//     WAN pays the inter-site QoS, so cross-site decompositions are
//     latency-bound exactly as real MPICH-G2 runs were.

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace spice::net {

struct MpiSitePlacement {
  std::string site;
  int ranks = 0;
  bool hidden_ip = false;
};

struct MpiJobConfig {
  std::vector<MpiSitePlacement> placement;
  std::size_t iterations = 10;
  double compute_seconds_per_iteration = 0.05;  ///< per rank, perfectly balanced
  double halo_bytes = 2e5;        ///< ring-neighbour exchange per iteration
  double allreduce_bytes = 1e3;   ///< payload of each reduction message
  Transport transport = Transport::Tcp;
};

struct MpiRunResult {
  bool feasible = false;
  std::string failure;             ///< set when !feasible
  int total_ranks = 0;
  double wall_seconds = 0.0;
  double compute_seconds = 0.0;
  double communication_seconds = 0.0;  ///< wall − compute
  std::uint64_t wan_messages = 0;      ///< messages that crossed sites
  [[nodiscard]] double communication_fraction() const {
    return wall_seconds > 0.0 ? communication_seconds / wall_seconds : 0.0;
  }
};

/// Place the ranks as hosts on `network` and simulate the job. The
/// network must already have links between every pair of involved sites.
[[nodiscard]] MpiRunResult run_mpi_job(Network& network, const MpiJobConfig& config);

}  // namespace spice::net
