#include "net/mpi.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace spice::net {

MpiRunResult run_mpi_job(Network& network, const MpiJobConfig& config) {
  SPICE_REQUIRE(!config.placement.empty(), "MPI job needs a placement");
  SPICE_REQUIRE(config.iterations > 0, "MPI job needs iterations");

  MpiRunResult result;

  // Materialize ranks as hosts, in placement order (rank ids are global).
  std::vector<HostId> ranks;
  for (const auto& site : config.placement) {
    SPICE_REQUIRE(site.ranks > 0, "site placement needs ranks");
    for (int r = 0; r < site.ranks; ++r) {
      ranks.push_back(network.add_host(
          "mpi-rank-" + std::to_string(ranks.size()), site.site, site.hidden_ip));
    }
  }
  result.total_ranks = static_cast<int>(ranks.size());
  SPICE_REQUIRE(ranks.size() >= 2, "MPI job needs at least two ranks");

  // Feasibility: every ring neighbour pair and every tree edge must be
  // routable. (classify_path is static, so check up front — the paper's
  // experience: the job simply cannot start.)
  auto routable = [&](HostId a, HostId b) {
    const PathKind path = network.classify_path(a, b);
    if (path == PathKind::Unreachable) return false;
    if (path == PathKind::ViaGateway && config.transport == Transport::Udp) return false;
    return true;
  };
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const std::size_t next = (r + 1) % ranks.size();
    if (!routable(ranks[r], ranks[next]) || !routable(ranks[next], ranks[r])) {
      result.failure = "rank " + std::to_string(r) + " cannot reach rank " +
                       std::to_string(next) +
                       " (hidden IP without a gateway, or UDP through a gateway)";
      return result;
    }
  }

  // Simulate iterations on a virtual wall clock. Ranks are synchronous
  // (bulk-synchronous stencil): iteration time = compute + slowest halo
  // + allreduce tree depth.
  double wall = 0.0;
  const std::uint64_t wan_before = network.stats().messages;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    wall += config.compute_seconds_per_iteration;

    // Halo exchange with both ring neighbours, all at once.
    double halo_done = wall;
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      const std::size_t next = (r + 1) % ranks.size();
      const auto out = network.send(wall, ranks[r], ranks[next], config.halo_bytes,
                                    config.transport);
      SPICE_ENSURE(out.delivered, "routable pair failed to deliver");
      halo_done = std::max(halo_done, out.deliver_at);
      if (network.host(ranks[r]).site != network.host(ranks[next]).site) {
        ++result.wan_messages;
      }
    }
    wall = halo_done;

    // Allreduce: binomial tree, log2(P) levels of pairwise exchanges.
    const auto levels = static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(ranks.size()))));
    for (std::size_t level = 0; level < levels; ++level) {
      const std::size_t stride = 1ULL << level;
      double level_done = wall;
      for (std::size_t r = 0; r + stride < ranks.size(); r += 2 * stride) {
        const auto out = network.send(wall, ranks[r + stride], ranks[r],
                                      config.allreduce_bytes, config.transport);
        SPICE_ENSURE(out.delivered, "routable pair failed to deliver");
        level_done = std::max(level_done, out.deliver_at);
        if (network.host(ranks[r]).site != network.host(ranks[r + stride]).site) {
          ++result.wan_messages;
        }
      }
      wall = level_done;
    }
  }

  result.feasible = true;
  result.wall_seconds = wall;
  result.compute_seconds =
      static_cast<double>(config.iterations) * config.compute_seconds_per_iteration;
  result.communication_seconds = result.wall_seconds - result.compute_seconds;
  (void)wan_before;  // wan_messages counted inline per cross-site send
  return result;
}

}  // namespace spice::net
