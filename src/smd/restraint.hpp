#pragma once
// Static harmonic restraint on the COM reaction coordinate — the umbrella
// potential used by the WHAM reference calculation and the fixed-λ
// restraint used by thermodynamic integration (the paper's named
// extension, Conclusion §VI).

#include <cstdint>
#include <vector>

#include "common/statistics.hpp"
#include "common/vec3.hpp"
#include "md/force_contribution.hpp"

namespace spice::md {
class Engine;
}

namespace spice::smd {

/// U = ½ κ (ξ − center)², with ξ the COM displacement of `atoms` along
/// `direction` measured from an attach-time reference (same coordinate
/// definition as ConstantVelocityPull, so umbrella windows and pulls share
/// a reaction coordinate).
class StaticRestraint final : public spice::md::ForceContribution {
 public:
  /// kappa in internal units (kcal/mol/Å²).
  StaticRestraint(std::vector<std::uint32_t> atoms, Vec3 direction, double kappa, double center);

  /// Fix the ξ = 0 reference at the engine's current COM. Call once.
  void attach(const spice::md::Engine& engine);
  /// Reuse an externally established reference COM (so that all umbrella
  /// windows share one origin).
  void attach_reference(const Vec3& com_reference);

  void set_center(double center) { center_ = center; }
  [[nodiscard]] double center() const { return center_; }
  [[nodiscard]] double kappa() const { return kappa_; }
  /// ξ at the last force evaluation.
  [[nodiscard]] double xi() const { return last_xi_; }
  /// Statistics of ξ collected since the last reset_statistics().
  [[nodiscard]] const spice::RunningStats& xi_stats() const { return xi_stats_; }
  /// Statistics of the restraint force κ(center − ξ) (for TI mean force).
  [[nodiscard]] const spice::RunningStats& force_stats() const { return force_stats_; }
  void reset_statistics();
  /// Raw ξ samples recorded at every evaluation since the last reset
  /// (consumed by WHAM histograms).
  [[nodiscard]] const std::vector<double>& xi_samples() const { return xi_samples_; }
  /// Enable/disable per-evaluation ξ recording (off by default).
  void set_record_samples(bool record) { record_samples_ = record; }

  /// Serial phase: measure ξ, collect statistics (once per time stamp).
  double begin_evaluation(std::span<const Vec3> positions,
                          const spice::md::Topology& topology, double time) override;
  /// Parallel phase: mass-weighted restoring force on atoms in range.
  double accumulate_range(std::span<const Vec3> positions,
                          const spice::md::Topology& topology, double time,
                          std::size_t begin, std::size_t end,
                          std::span<Vec3> forces) override;
  [[nodiscard]] std::string name() const override { return "restraint"; }

 private:
  std::vector<std::uint32_t> atoms_;
  Vec3 direction_;
  double kappa_;
  double center_;
  bool attached_ = false;
  Vec3 com_reference_;
  double last_xi_ = 0.0;
  double last_time_ = -1.0;
  double last_f_com_ = 0.0;      ///< restoring force on the COM
  double selection_mass_ = 0.0;  ///< computed once per evaluation
  bool record_samples_ = false;
  spice::RunningStats xi_stats_;
  spice::RunningStats force_stats_;
  std::vector<double> xi_samples_;
};

}  // namespace spice::smd
