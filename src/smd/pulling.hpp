#pragma once
// Steered molecular dynamics (SMD).
//
// Constant-velocity pulling: a fictitious "pulling atom" moves along the
// pull direction at velocity v and is coupled by a harmonic spring of
// stiffness κ to the reaction coordinate ξ — the projection of the centre
// of mass of the SMD atoms onto the pull direction, relative to its value
// when the pull was attached (the paper's "displacement of COM").
//
//   λ(t) = v·t            (spring anchor)
//   U(ξ, t) = ½ κ (ξ − λ(t))²
//   dW      = ∂U/∂λ · dλ = κ (λ − ξ) v dt   (accumulated external work)
//
// κ and v are THE two free parameters the paper's Fig. 4 optimizes; the
// constructors accept them in the paper's units (pN/Å, Å/ns).
//
// Constant-force mode (paper's IMD phase: "apply a force to a subset of
// atoms", haptic exploration) is provided by ConstantForcePull.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "md/engine.hpp"
#include "md/force_contribution.hpp"

namespace spice::md {
class EnsembleEngine;
}

namespace spice::smd {

struct SmdParams {
  double spring_pn_per_angstrom = 100.0;  ///< κ in paper units (pN/Å)
  double velocity_angstrom_per_ns = 12.5; ///< v in paper units (Å/ns)
  Vec3 direction{0.0, 0.0, -1.0};         ///< pull direction (normalized internally)
  std::vector<std::uint32_t> smd_atoms;   ///< atoms coupled to the spring
  /// Hold the anchor at λ = 0 for this long after attach before moving —
  /// equilibrates the system WITH the spring so the pull starts from the
  /// λ = 0 equilibrium ensemble Jarzynski's identity assumes. No work
  /// accumulates while the anchor is stationary (dλ = 0). Offline work
  /// pipelines must preserve this: re-integrating the recorded force
  /// series over time (F·v̄·dt) counts the settle-phase forces as work;
  /// fe::reintegrate_from_force integrates over the anchor path instead,
  /// which is what makes WorkSource::SampledForce hold-safe.
  double hold_ps = 0.0;

  /// κ in internal units (kcal/mol/Å²).
  [[nodiscard]] double spring_internal() const;
  /// v in internal units (Å/ps).
  [[nodiscard]] double velocity_internal() const;
};

/// One recorded point of a pull.
struct PullSample {
  double time = 0.0;    ///< ps since attach
  double lambda = 0.0;  ///< spring anchor displacement, Å
  double xi = 0.0;      ///< COM displacement along the pull direction, Å
  double force = 0.0;   ///< instantaneous spring force κ(λ−ξ), kcal/mol/Å
  double work = 0.0;    ///< accumulated external work, kcal/mol
};

/// Constant-velocity SMD spring. Register with Engine::add_contribution,
/// then call attach() once the initial state is prepared.
class ConstantVelocityPull final : public spice::md::ForceContribution {
 public:
  explicit ConstantVelocityPull(SmdParams params);

  /// Fix the reference COM and start the clock at the engine's current
  /// state. Must be called before the first pulled step.
  void attach(const spice::md::Engine& engine);

  /// Serial phase: advance the anchor, measure ξ, accumulate work.
  double begin_evaluation(std::span<const Vec3> positions,
                          const spice::md::Topology& topology, double time) override;
  /// Parallel phase: mass-weighted spring force on selection atoms in range.
  double accumulate_range(std::span<const Vec3> positions,
                          const spice::md::Topology& topology, double time,
                          std::size_t begin, std::size_t end,
                          std::span<Vec3> forces) override;
  [[nodiscard]] std::string name() const override { return "smd-cv"; }

  [[nodiscard]] const SmdParams& params() const { return params_; }
  [[nodiscard]] bool attached() const { return attached_; }
  /// Current anchor displacement λ (Å since attach).
  [[nodiscard]] double lambda() const { return last_lambda_; }
  /// Current reaction coordinate ξ (Å since attach).
  [[nodiscard]] double xi() const { return last_xi_; }
  /// Accumulated external work, kcal/mol.
  [[nodiscard]] double work() const { return work_; }
  /// Spring force at the last evaluation, kcal/mol/Å.
  [[nodiscard]] double spring_force() const;

 private:
  SmdParams params_;
  Vec3 direction_;
  double kappa_ = 0.0;     // internal units
  double velocity_ = 0.0;  // internal units
  bool attached_ = false;
  Vec3 com_reference_;
  double attach_time_ = 0.0;
  double last_time_ = 0.0;
  double last_lambda_ = 0.0;
  double last_xi_ = 0.0;
  double work_ = 0.0;
  double selection_mass_ = 0.0;
  double last_f_com_ = 0.0;  ///< spring force on the COM from begin_evaluation
};

/// Constant external force on a selection, mass-distributed (IMD mode).
class ConstantForcePull final : public spice::md::ForceContribution {
 public:
  /// force: total force vector (kcal/mol/Å) applied to the selection's COM.
  ConstantForcePull(std::vector<std::uint32_t> atoms, Vec3 force);

  void set_force(const Vec3& force) { force_ = force; }
  [[nodiscard]] const Vec3& force() const { return force_; }

  double begin_evaluation(std::span<const Vec3> positions,
                          const spice::md::Topology& topology, double time) override;
  double accumulate_range(std::span<const Vec3> positions,
                          const spice::md::Topology& topology, double time,
                          std::size_t begin, std::size_t end,
                          std::span<Vec3> forces) override;
  [[nodiscard]] std::string name() const override { return "smd-cf"; }

 private:
  std::vector<std::uint32_t> atoms_;
  Vec3 force_;
  double selection_mass_ = 0.0;  ///< computed once per evaluation
};

/// Result of a completed constant-velocity pull.
struct PullResult {
  std::vector<PullSample> samples;  ///< one per sampled step, time-ordered
  double pulled_distance = 0.0;     ///< final λ, Å
  std::uint64_t steps = 0;          ///< MD steps taken
};

/// Drive `engine` until the spring anchor has advanced by `distance` Å,
/// recording a sample every `sample_every` steps (and always the final
/// state). The pull must already be attached and registered with the
/// engine.
[[nodiscard]] PullResult run_pull(spice::md::Engine& engine, ConstantVelocityPull& pull,
                                  double distance, std::size_t sample_every = 10);

/// Batched variant: drive every replica of `ensemble` through the same
/// protocol, pulls[r] being replica r's (already attached and registered)
/// spring. All pulls must share dt/velocity/hold so the replicas stay in
/// lock-step; the per-replica sample cadence — and, because each ensemble
/// replica is bit-identical to a standalone clone, the samples themselves —
/// match run_pull on N independent engines exactly.
[[nodiscard]] std::vector<PullResult> run_ensemble_pull(
    spice::md::EnsembleEngine& ensemble,
    std::span<const std::shared_ptr<ConstantVelocityPull>> pulls, double distance,
    std::size_t sample_every = 10);

}  // namespace spice::smd
