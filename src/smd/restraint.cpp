#include "smd/restraint.hpp"

#include "common/error.hpp"
#include "md/engine.hpp"
#include "md/observables.hpp"

namespace spice::smd {

StaticRestraint::StaticRestraint(std::vector<std::uint32_t> atoms, Vec3 direction, double kappa,
                                 double center)
    : atoms_(std::move(atoms)),
      direction_(direction.normalized()),
      kappa_(kappa),
      center_(center) {
  SPICE_REQUIRE(!atoms_.empty(), "restraint needs at least one atom");
  SPICE_REQUIRE(kappa_ > 0.0, "restraint stiffness must be positive");
  SPICE_REQUIRE(direction.norm() > 0.0, "restraint direction must be non-zero");
}

void StaticRestraint::attach(const spice::md::Engine& engine) {
  attach_reference(
      spice::md::center_of_mass(engine.positions(), engine.topology(), atoms_));
}

void StaticRestraint::attach_reference(const Vec3& com_reference) {
  com_reference_ = com_reference;
  attached_ = true;
}

void StaticRestraint::reset_statistics() {
  xi_stats_.reset();
  force_stats_.reset();
  xi_samples_.clear();
}

double StaticRestraint::begin_evaluation(std::span<const Vec3> positions,
                                         const spice::md::Topology& topology, double time) {
  SPICE_REQUIRE(attached_, "StaticRestraint used before attach()");
  const Vec3 com = spice::md::center_of_mass(positions, topology, atoms_);
  const double xi = dot(com - com_reference_, direction_);
  last_xi_ = xi;

  // Collect statistics once per simulation step: the engine may evaluate
  // forces more than once at the same time stamp.
  if (time != last_time_) {
    xi_stats_.add(xi);
    force_stats_.add(kappa_ * (center_ - xi));
    if (record_samples_) xi_samples_.push_back(xi);
    last_time_ = time;
  }

  const double dev = xi - center_;
  last_f_com_ = -kappa_ * dev;
  selection_mass_ = 0.0;
  const auto& particles = topology.particles();
  for (const auto i : atoms_) selection_mass_ += particles[i].mass;
  return 0.5 * kappa_ * dev * dev;
}

double StaticRestraint::accumulate_range(std::span<const Vec3> /*positions*/,
                                         const spice::md::Topology& topology, double /*time*/,
                                         std::size_t begin, std::size_t end,
                                         std::span<Vec3> forces) {
  const auto& particles = topology.particles();
  for (const auto i : atoms_) {
    if (i < begin || i >= end) continue;
    forces[i] += direction_ * (last_f_com_ * particles[i].mass / selection_mass_);
  }
  return 0.0;
}

}  // namespace spice::smd
