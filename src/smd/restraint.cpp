#include "smd/restraint.hpp"

#include "common/error.hpp"
#include "md/engine.hpp"
#include "md/observables.hpp"

namespace spice::smd {

StaticRestraint::StaticRestraint(std::vector<std::uint32_t> atoms, Vec3 direction, double kappa,
                                 double center)
    : atoms_(std::move(atoms)),
      direction_(direction.normalized()),
      kappa_(kappa),
      center_(center) {
  SPICE_REQUIRE(!atoms_.empty(), "restraint needs at least one atom");
  SPICE_REQUIRE(kappa_ > 0.0, "restraint stiffness must be positive");
  SPICE_REQUIRE(direction.norm() > 0.0, "restraint direction must be non-zero");
}

void StaticRestraint::attach(const spice::md::Engine& engine) {
  attach_reference(
      spice::md::center_of_mass(engine.positions(), engine.topology(), atoms_));
}

void StaticRestraint::attach_reference(const Vec3& com_reference) {
  com_reference_ = com_reference;
  attached_ = true;
}

void StaticRestraint::reset_statistics() {
  xi_stats_.reset();
  force_stats_.reset();
  xi_samples_.clear();
}

double StaticRestraint::add_forces(std::span<const Vec3> positions,
                                   const spice::md::Topology& topology, double time,
                                   std::span<Vec3> forces) {
  SPICE_REQUIRE(attached_, "StaticRestraint used before attach()");
  const Vec3 com = spice::md::center_of_mass(positions, topology, atoms_);
  const double xi = dot(com - com_reference_, direction_);
  last_xi_ = xi;

  // Collect statistics once per simulation step: the engine may evaluate
  // forces more than once at the same time stamp.
  if (time != last_time_) {
    xi_stats_.add(xi);
    force_stats_.add(kappa_ * (center_ - xi));
    if (record_samples_) xi_samples_.push_back(xi);
    last_time_ = time;
  }

  const double dev = xi - center_;
  double selection_mass = 0.0;
  const auto& particles = topology.particles();
  for (const auto i : atoms_) selection_mass += particles[i].mass;
  const double f_com = -kappa_ * dev;
  for (const auto i : atoms_) {
    forces[i] += direction_ * (f_com * particles[i].mass / selection_mass);
  }
  return 0.5 * kappa_ * dev * dev;
}

}  // namespace spice::smd
