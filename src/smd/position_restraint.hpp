#pragma once
// Per-atom position restraints.
//
// The paper's interactive phase uses the haptic exploration "to determine
// suitable constraints to place" (§III) — in production those become
// position restraints pinning parts of the system (e.g. holding the pore
// scaffold, or anchoring the strand's tail while the head is pulled).
// U = ½ k Σ_i |r_i − r_i⁰|², with per-axis masks so a restraint can pin
// only the lateral (x, y) coordinates while leaving z free.

#include <cstdint>
#include <vector>

#include "common/vec3.hpp"
#include "md/force_contribution.hpp"

namespace spice::md {
class Engine;
}

namespace spice::smd {

class PositionRestraint final : public spice::md::ForceContribution {
 public:
  /// Restrain `atoms` with stiffness k (kcal/mol/Å²). `mask` selects the
  /// restrained axes (1 = restrained, 0 = free); default pins all three.
  PositionRestraint(std::vector<std::uint32_t> atoms, double stiffness,
                    Vec3 mask = {1.0, 1.0, 1.0});

  /// Capture the anchor positions from the engine's current state.
  void attach(const spice::md::Engine& engine);
  /// Use explicit anchors (must match the atom count).
  void attach_anchors(std::vector<Vec3> anchors);

  [[nodiscard]] bool attached() const { return attached_; }
  [[nodiscard]] double stiffness() const { return stiffness_; }
  [[nodiscard]] const std::vector<Vec3>& anchors() const { return anchors_; }

  /// Purely per-atom — no serial phase needed; each range contributes the
  /// energy of its own anchored atoms.
  double accumulate_range(std::span<const Vec3> positions,
                          const spice::md::Topology& topology, double time,
                          std::size_t begin, std::size_t end,
                          std::span<Vec3> forces) override;
  [[nodiscard]] std::string name() const override { return "posres"; }

 private:
  std::vector<std::uint32_t> atoms_;
  double stiffness_;
  Vec3 mask_;
  std::vector<Vec3> anchors_;
  bool attached_ = false;
};

}  // namespace spice::smd
