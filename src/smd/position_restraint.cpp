#include "smd/position_restraint.hpp"

#include "common/error.hpp"
#include "md/engine.hpp"

namespace spice::smd {

PositionRestraint::PositionRestraint(std::vector<std::uint32_t> atoms, double stiffness,
                                     Vec3 mask)
    : atoms_(std::move(atoms)), stiffness_(stiffness), mask_(mask) {
  SPICE_REQUIRE(!atoms_.empty(), "position restraint needs atoms");
  SPICE_REQUIRE(stiffness_ > 0.0, "position-restraint stiffness must be positive");
  SPICE_REQUIRE((mask_.x == 0.0 || mask_.x == 1.0) && (mask_.y == 0.0 || mask_.y == 1.0) &&
                    (mask_.z == 0.0 || mask_.z == 1.0),
                "mask components must be 0 or 1");
  SPICE_REQUIRE(mask_.norm2() > 0.0, "mask must restrain at least one axis");
}

void PositionRestraint::attach(const spice::md::Engine& engine) {
  std::vector<Vec3> anchors;
  anchors.reserve(atoms_.size());
  for (const auto i : atoms_) {
    SPICE_REQUIRE(i < engine.positions().size(), "restrained atom out of range");
    anchors.push_back(engine.positions()[i]);
  }
  attach_anchors(std::move(anchors));
}

void PositionRestraint::attach_anchors(std::vector<Vec3> anchors) {
  SPICE_REQUIRE(anchors.size() == atoms_.size(), "anchor count must match atom count");
  anchors_ = std::move(anchors);
  attached_ = true;
}

double PositionRestraint::accumulate_range(std::span<const Vec3> positions,
                                           const spice::md::Topology& /*topology*/,
                                           double /*time*/, std::size_t begin, std::size_t end,
                                           std::span<Vec3> forces) {
  SPICE_REQUIRE(attached_, "PositionRestraint used before attach()");
  double energy = 0.0;
  for (std::size_t n = 0; n < atoms_.size(); ++n) {
    const std::uint32_t i = atoms_[n];
    if (i < begin || i >= end) continue;
    Vec3 dev = positions[i] - anchors_[n];
    dev = {dev.x * mask_.x, dev.y * mask_.y, dev.z * mask_.z};
    energy += 0.5 * stiffness_ * dev.norm2();
    forces[i] += dev * (-stiffness_);
  }
  return energy;
}

}  // namespace spice::smd
