#include "smd/pulling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "md/ensemble_engine.hpp"
#include "md/observables.hpp"

namespace spice::smd {

double SmdParams::spring_internal() const {
  return units::spring_pn_per_angstrom(spring_pn_per_angstrom);
}

double SmdParams::velocity_internal() const {
  return units::velocity_angstrom_per_ns(velocity_angstrom_per_ns);
}

ConstantVelocityPull::ConstantVelocityPull(SmdParams params) : params_(std::move(params)) {
  SPICE_REQUIRE(params_.spring_pn_per_angstrom > 0.0, "SMD spring constant must be positive");
  SPICE_REQUIRE(params_.velocity_angstrom_per_ns > 0.0, "SMD velocity must be positive");
  SPICE_REQUIRE(!params_.smd_atoms.empty(), "SMD needs at least one pulled atom");
  SPICE_REQUIRE(params_.direction.norm() > 0.0, "SMD direction must be non-zero");
  direction_ = params_.direction.normalized();
  kappa_ = params_.spring_internal();
  velocity_ = params_.velocity_internal();
}

void ConstantVelocityPull::attach(const spice::md::Engine& engine) {
  com_reference_ =
      spice::md::center_of_mass(engine.positions(), engine.topology(), params_.smd_atoms);
  attach_time_ = engine.time();
  last_time_ = attach_time_;
  last_lambda_ = 0.0;
  last_xi_ = 0.0;
  work_ = 0.0;
  selection_mass_ = 0.0;
  for (const auto i : params_.smd_atoms) {
    selection_mass_ += engine.topology().particles()[i].mass;
  }
  attached_ = true;
}

double ConstantVelocityPull::begin_evaluation(std::span<const Vec3> positions,
                                              const spice::md::Topology& topology, double time) {
  SPICE_REQUIRE(attached_, "ConstantVelocityPull used before attach()");
  const Vec3 com = spice::md::center_of_mass(positions, topology, params_.smd_atoms);
  const double xi = dot(com - com_reference_, direction_);
  const double lambda =
      velocity_ * std::max(0.0, time - attach_time_ - params_.hold_ps);

  // Accumulate external work dW = κ(λ − ξ) dλ only when simulation time
  // has advanced (the engine may evaluate forces repeatedly at the same
  // time, e.g. for energy reports; those must not double-count). During a
  // hold phase dλ = 0, so no work accrues.
  if (time > last_time_) {
    work_ += kappa_ * (lambda - xi) * (lambda - last_lambda_);
    last_time_ = time;
  }
  last_lambda_ = lambda;
  last_xi_ = xi;
  last_f_com_ = kappa_ * (lambda - xi);

  const double dev = xi - lambda;
  return 0.5 * kappa_ * dev * dev;
}

double ConstantVelocityPull::accumulate_range(std::span<const Vec3> /*positions*/,
                                              const spice::md::Topology& topology,
                                              double /*time*/, std::size_t begin,
                                              std::size_t end, std::span<Vec3> forces) {
  // Spring force on the COM along the pull direction, distributed
  // mass-weighted over the SMD atoms (a force f on the COM corresponds to
  // f·(m_i / M) on each member). Each range touches only its own atoms.
  const auto& particles = topology.particles();
  for (const auto i : params_.smd_atoms) {
    if (i < begin || i >= end) continue;
    forces[i] += direction_ * (last_f_com_ * particles[i].mass / selection_mass_);
  }
  return 0.0;
}

double ConstantVelocityPull::spring_force() const { return kappa_ * (last_lambda_ - last_xi_); }

ConstantForcePull::ConstantForcePull(std::vector<std::uint32_t> atoms, Vec3 force)
    : atoms_(std::move(atoms)), force_(force) {
  SPICE_REQUIRE(!atoms_.empty(), "constant-force pull needs at least one atom");
}

double ConstantForcePull::begin_evaluation(std::span<const Vec3> positions,
                                           const spice::md::Topology& topology,
                                           double /*time*/) {
  selection_mass_ = 0.0;
  const auto& particles = topology.particles();
  for (const auto i : atoms_) {
    SPICE_REQUIRE(i < positions.size(), "constant-force atom out of range");
    selection_mass_ += particles[i].mass;
  }
  // A constant force has no well-defined absolute potential; report 0 so
  // it does not pollute energy-conservation checks (documented behaviour).
  return 0.0;
}

double ConstantForcePull::accumulate_range(std::span<const Vec3> /*positions*/,
                                           const spice::md::Topology& topology, double /*time*/,
                                           std::size_t begin, std::size_t end,
                                           std::span<Vec3> forces) {
  const auto& particles = topology.particles();
  for (const auto i : atoms_) {
    if (i < begin || i >= end) continue;
    forces[i] += force_ * (particles[i].mass / selection_mass_);
  }
  return 0.0;
}

PullResult run_pull(spice::md::Engine& engine, ConstantVelocityPull& pull, double distance,
                    std::size_t sample_every) {
  SPICE_REQUIRE(pull.attached(), "run_pull needs an attached pull");
  SPICE_REQUIRE(distance > 0.0, "pull distance must be positive");
  SPICE_REQUIRE(sample_every > 0, "sample_every must be positive");

  PullResult result;
  auto record = [&] {
    PullSample s;
    s.time = engine.time();
    s.lambda = pull.lambda();
    s.xi = pull.xi();
    s.force = pull.spring_force();
    s.work = pull.work();
    result.samples.push_back(s);
  };

  const double dt = engine.config().dt;
  const double v = pull.params().velocity_internal();
  const auto total_steps = static_cast<std::uint64_t>(
      std::ceil((distance / v + pull.params().hold_ps) / dt));

  record();  // λ = 0 starting point
  for (std::uint64_t s = 0; s < total_steps; ++s) {
    engine.step();
    if ((s + 1) % sample_every == 0 || s + 1 == total_steps) record();
  }
  result.pulled_distance = pull.lambda();
  result.steps = total_steps;
  return result;
}

std::vector<PullResult> run_ensemble_pull(
    spice::md::EnsembleEngine& ensemble,
    std::span<const std::shared_ptr<ConstantVelocityPull>> pulls, double distance,
    std::size_t sample_every) {
  SPICE_REQUIRE(pulls.size() == ensemble.size(), "one pull per ensemble replica");
  SPICE_REQUIRE(distance > 0.0, "pull distance must be positive");
  SPICE_REQUIRE(sample_every > 0, "sample_every must be positive");
  const double dt = ensemble.replica(0).config().dt;
  const double v = pulls[0]->params().velocity_internal();
  const double hold = pulls[0]->params().hold_ps;
  for (const auto& pull : pulls) {
    SPICE_REQUIRE(pull != nullptr && pull->attached(), "run_ensemble_pull needs attached pulls");
    SPICE_REQUIRE(pull->params().velocity_internal() == v && pull->params().hold_ps == hold,
                  "ensemble pulls must share one protocol");
  }
  const auto total_steps = static_cast<std::uint64_t>(std::ceil((distance / v + hold) / dt));

  std::vector<PullResult> results(pulls.size());
  auto record = [&](std::size_t r) {
    const ConstantVelocityPull& pull = *pulls[r];
    PullSample s;
    s.time = ensemble.replica(r).time();
    s.lambda = pull.lambda();
    s.xi = pull.xi();
    s.force = pull.spring_force();
    s.work = pull.work();
    results[r].samples.push_back(s);
  };
  for (std::size_t r = 0; r < pulls.size(); ++r) record(r);  // λ = 0 starting point

  // Step all replicas in lock-step to each sample boundary. This visits
  // exactly the steps where run_pull records: multiples of sample_every,
  // plus the final step.
  std::uint64_t done = 0;
  while (done < total_steps) {
    const std::uint64_t next = std::min<std::uint64_t>(total_steps, done + sample_every);
    ensemble.step_all(next - done);
    done = next;
    for (std::size_t r = 0; r < pulls.size(); ++r) record(r);
  }
  for (std::size_t r = 0; r < pulls.size(); ++r) {
    results[r].pulled_distance = pulls[r]->lambda();
    results[r].steps = total_steps;
  }
  return results;
}

}  // namespace spice::smd
