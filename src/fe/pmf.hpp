#pragma once
// PMF curve utilities: interpolation, re-anchoring, and the paper's
// sub-trajectory decomposition ("when the PMF is required over a long
// trajectory, it is advantageous to break up a single long trajectory into
// smaller trajectories", §IV-A) — independent PMF segments are stitched by
// matching values at the segment boundaries.

#include <span>
#include <vector>

#include "fe/jarzynski.hpp"

namespace spice::fe {

/// Linear interpolation of Φ at x (clamped to the grid range).
[[nodiscard]] double pmf_at(const PmfEstimate& pmf, double x);

/// Shift the whole curve so that Φ(x) = 0.
void shift_pmf(PmfEstimate& pmf, double x);

/// Stitch consecutive PMF segments into one curve. Each segment's λ is
/// local (starting at 0); segment i+1 is offset so its first value
/// continues segment i's last value, and its λ axis is shifted by the
/// accumulated length of previous segments.
[[nodiscard]] PmfEstimate stitch_segments(std::span<const PmfEstimate> segments);

/// Split one long pull into sub-trajectory work ensembles of length
/// `segment_length` each (the paper's 10 Å choice): segment k covers
/// λ ∈ [k·L, (k+1)·L] with work re-zeroed at the segment start.
[[nodiscard]] std::vector<WorkEnsemble> split_subtrajectories(
    std::span<const spice::smd::PullResult> pulls, double segment_length,
    std::size_t segments, std::size_t points_per_segment);

}  // namespace spice::fe
