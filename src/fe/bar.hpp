#pragma once
// Bidirectional free-energy estimation: the Crooks fluctuation theorem and
// the Bennett acceptance ratio (BAR).
//
// Jarzynski's equality uses forward pulls only; its exponential average is
// dominated by rare low-work trajectories. When reverse pulls are also
// available (pulling the strand back up the pore), Crooks' theorem
//
//     P_F(W) / P_R(−W) = exp(β (W − ΔF))
//
// pins ΔF at the crossing of the forward and reverse work distributions,
// and BAR is the provably minimum-variance estimator built on it:
//
//     Σ_F f(β(W_i − C)) = Σ_R f(β(W̃_j + C)),   f(x) = 1/(1+ (n_F/n_R) eˣ)
//     ΔF = C + kT ln(n_F / n_R) ... (solved self-consistently; we use the
//     standard bisection on the BAR implicit equation).
//
// This module is a natural extension of the paper's SMD-JE machinery (the
// same infrastructure runs reverse pulls as just another batch of grid
// jobs) and is exercised by bench/ablation_estimators.

#include <cstddef>
#include <span>
#include <vector>

namespace spice::fe {

struct BarResult {
  double delta_f = 0.0;      ///< kcal/mol
  double crossing_gap = 0.0; ///< residual of the implicit equation at the root
  std::size_t iterations = 0;
  bool converged = false;
};

/// BAR estimate of ΔF from forward works (0 → λ) and reverse works
/// (λ → 0, each the work of the reverse protocol, NOT negated).
/// Requires both ensembles non-empty.
[[nodiscard]] BarResult bennett_acceptance_ratio(std::span<const double> forward_work,
                                                 std::span<const double> reverse_work,
                                                 double temperature_k);

/// Crooks-crossing estimate: ΔF is where the forward work histogram
/// crosses the negated-reverse histogram. Coarser than BAR but model-free;
/// returns the crossing of Gaussian fits (robust for small samples).
[[nodiscard]] double crooks_gaussian_crossing(std::span<const double> forward_work,
                                              std::span<const double> reverse_work);

/// Diagnostic: the overlap of forward and negated-reverse work samples
/// (Bhattacharyya coefficient of Gaussian fits, 1 = perfect overlap).
/// Low overlap warns that both JE and BAR are extrapolating.
[[nodiscard]] double work_distribution_overlap(std::span<const double> forward_work,
                                               std::span<const double> reverse_work);

}  // namespace spice::fe
