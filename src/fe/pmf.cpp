#include "fe/pmf.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace spice::fe {

double pmf_at(const PmfEstimate& pmf, double x) {
  SPICE_REQUIRE(pmf.lambda.size() >= 2, "pmf_at needs at least two points");
  const auto& xs = pmf.lambda;
  if (x <= xs.front()) return pmf.phi.front();
  if (x >= xs.back()) return pmf.phi.back();
  const auto it = std::lower_bound(xs.begin(), xs.end(), x);
  const auto hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return pmf.phi[lo] * (1.0 - t) + pmf.phi[hi] * t;
}

void shift_pmf(PmfEstimate& pmf, double x) {
  const double offset = pmf_at(pmf, x);
  for (auto& v : pmf.phi) v -= offset;
}

PmfEstimate stitch_segments(std::span<const PmfEstimate> segments) {
  SPICE_REQUIRE(!segments.empty(), "no segments to stitch");
  PmfEstimate out;
  double lambda_offset = 0.0;
  double phi_offset = 0.0;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const auto& seg = segments[s];
    SPICE_REQUIRE(seg.lambda.size() >= 2, "segment needs at least two points");
    const double local_phi0 = seg.phi.front();
    for (std::size_t g = 0; g < seg.lambda.size(); ++g) {
      if (s > 0 && g == 0) continue;  // boundary point already emitted
      out.lambda.push_back(lambda_offset + seg.lambda[g] - seg.lambda.front());
      out.phi.push_back(phi_offset + seg.phi[g] - local_phi0);
    }
    lambda_offset += seg.lambda.back() - seg.lambda.front();
    phi_offset += seg.phi.back() - local_phi0;
  }
  return out;
}

std::vector<WorkEnsemble> split_subtrajectories(std::span<const spice::smd::PullResult> pulls,
                                                double segment_length, std::size_t segments,
                                                std::size_t points_per_segment) {
  SPICE_REQUIRE(segment_length > 0.0, "segment length must be positive");
  SPICE_REQUIRE(segments > 0, "need at least one segment");
  SPICE_REQUIRE(points_per_segment >= 2, "need at least two points per segment");

  // Build a full-length grid, then re-zero work at each segment start.
  const double total = segment_length * static_cast<double>(segments);
  const std::size_t total_points = (points_per_segment - 1) * segments + 1;
  const WorkEnsemble full = grid_work_ensemble(pulls, total, total_points);

  std::vector<WorkEnsemble> out(segments);
  for (std::size_t s = 0; s < segments; ++s) {
    WorkEnsemble& e = out[s];
    const std::size_t base = s * (points_per_segment - 1);
    e.lambda.resize(points_per_segment);
    for (std::size_t g = 0; g < points_per_segment; ++g) {
      e.lambda[g] = full.lambda[base + g] - full.lambda[base];
    }
    e.work.reserve(full.trajectories());
    for (const auto& w : full.work) {
      std::vector<double> seg(points_per_segment);
      for (std::size_t g = 0; g < points_per_segment; ++g) {
        seg[g] = w[base + g] - w[base];
      }
      e.work.push_back(std::move(seg));
    }
  }
  return out;
}

}  // namespace spice::fe
