#include "fe/convergence.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "common/units.hpp"

namespace spice::fe {

ConvergenceTracker::ConvergenceTracker(ConvergenceConfig config) : config_(config) {
  SPICE_REQUIRE(config_.temperature_k > 0.0, "temperature must be positive");
  SPICE_REQUIRE(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                "EWMA alpha must be in (0, 1]");
  SPICE_REQUIRE(config_.min_samples >= 2, "convergence needs at least 2 samples");
}

const ConvergenceState& ConvergenceTracker::add_work(double work_kcal) {
  works_.push_back(work_kcal);
  recompute();
  return state_;
}

void ConvergenceTracker::recompute() {
  const double kt = units::kT(config_.temperature_k);
  const double beta = 1.0 / kt;
  const std::size_t n = works_.size();

  // All the estimators share the shifted Boltzmann weights
  // u_i = exp(−βW_i − m) with m = max(−βW_i), so the largest weight is 1
  // and nothing overflows however dissipative the works are.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = -beta * works_[i];
  const double m = *std::max_element(x.begin(), x.end());
  double sum_u = 0.0;
  double sum_u2 = 0.0;
  double sum_w = 0.0;
  std::vector<double> u(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = std::exp(x[i] - m);
    sum_u += u[i];
    sum_u2 += u[i] * u[i];
    sum_w += works_[i];
  }

  state_.samples = n;
  // ΔF = −kT [ m + ln(Σu) − ln n ]   (the log-mean-exp, re-shifted).
  state_.delta_f = -kt * (m + std::log(sum_u) - std::log(static_cast<double>(n)));
  state_.delta_f_ewma = n == 1 ? state_.delta_f
                               : config_.ewma_alpha * state_.delta_f +
                                     (1.0 - config_.ewma_alpha) * state_.delta_f_ewma;
  state_.ess = sum_u2 > 0.0 ? (sum_u * sum_u) / sum_u2 : 0.0;
  state_.mean_work = sum_w / static_cast<double>(n);
  state_.dissipated_work = state_.mean_work - state_.delta_f;

  // Leave-one-out jackknife of ΔF: θ_{-i} reuses Σu minus one weight, so
  // the whole pass is O(n). Var_jack = (n−1)/n Σ (θ_{-i} − θ̄)².
  if (n >= 2) {
    std::vector<double> loo(n);
    double loo_mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double s = std::max(sum_u - u[i], 1e-300);
      loo[i] = -kt * (m + std::log(s) - std::log(static_cast<double>(n - 1)));
      loo_mean += loo[i];
    }
    loo_mean /= static_cast<double>(n);
    double var = 0.0;
    for (const double v : loo) var += (v - loo_mean) * (v - loo_mean);
    var *= static_cast<double>(n - 1) / static_cast<double>(n);
    state_.jackknife_error = std::sqrt(var);
  } else {
    state_.jackknife_error = 0.0;
  }

  state_.converged = config_.target_error_kcal > 0.0 && n >= config_.min_samples &&
                     state_.jackknife_error <= config_.target_error_kcal;
}

double endpoint_work(const spice::smd::PullResult& pull, double pull_distance,
                     WorkSource source) {
  // One-pull, two-point grid through the batch path: identical
  // interpolation (and SampledForce re-integration) to the final analysis.
  const WorkEnsemble ensemble =
      grid_work_ensemble(std::span<const spice::smd::PullResult>{&pull, 1}, pull_distance, 2,
                         source);
  return ensemble.work[0][1];
}

std::vector<double> endpoint_works(std::span<const spice::smd::PullResult> pulls,
                                   double pull_distance, WorkSource source) {
  std::vector<double> works;
  works.reserve(pulls.size());
  for (const auto& pull : pulls) {
    works.push_back(endpoint_work(pull, pull_distance, source));
  }
  return works;
}

}  // namespace spice::fe
