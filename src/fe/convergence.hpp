#pragma once
// Streaming SMD-JE convergence diagnostics (DESIGN.md §8, mission control).
//
// The Jarzynski exponential average is dominated by rare low-work
// trajectories (the small-sample bias of arXiv:1607.07430 / 1401.8040), so
// "how many pulls are enough?" cannot be answered from the point estimate
// alone. The ConvergenceTracker ingests the endpoint work of each
// completed pull and maintains, incrementally:
//
//   * ΔF        — the running JE estimate −kT ln⟨e^{−βW}⟩ over all works
//   * ΔF EWMA   — exponential average of the running estimate; its drift
//                 against ΔF shows whether new pulls still move the answer
//   * σ_jack    — leave-one-out jackknife standard error of ΔF (O(n) via a
//                 shifted log-sum-exp; honest about the heavy left tail in
//                 a way a naive σ/√n is not)
//   * ESS       — Kish effective sample size (Σw)²/Σw² with w = e^{−βW};
//                 collapses toward 1 when one rare trajectory dominates
//   * W_diss    — dissipated work ⟨W⟩ − ΔF, the systematic-bias proxy
//
// A (κ, v) cell is *converged* once σ_jack falls to the configured target
// with at least min_samples pulls banked — the campaign's early-stop hook
// (spice::core::SweepConfig::early_stop_error_kcal) uses exactly this
// predicate, and the steering layer exposes the same numbers as monitored
// parameters so an interactive operator watches them live.

#include <cstddef>
#include <vector>

#include "fe/jarzynski.hpp"

namespace spice::fe {

struct ConvergenceConfig {
  double temperature_k = 300.0;
  /// EWMA smoothing for the running ΔF estimate (weight of the newest
  /// running estimate).
  double ewma_alpha = 0.25;
  /// Convergence target for the jackknife error bar, kcal/mol. <= 0 means
  /// diagnostics only — converged() never fires.
  double target_error_kcal = 0.0;
  /// Never declare convergence with fewer pulls than this (a jackknife
  /// over 2–3 works is meaninglessly tight when they happen to agree).
  std::size_t min_samples = 4;
};

/// Snapshot of the diagnostics after the most recent pull.
struct ConvergenceState {
  std::size_t samples = 0;
  double delta_f = 0.0;           ///< JE exponential estimate, kcal/mol
  double delta_f_ewma = 0.0;      ///< exponential average of delta_f
  double jackknife_error = 0.0;   ///< leave-one-out SE of delta_f
  double ess = 0.0;               ///< Kish effective sample size ∈ [1, n]
  double mean_work = 0.0;
  double dissipated_work = 0.0;   ///< ⟨W⟩ − ΔF, kcal/mol
  bool converged = false;
};

class ConvergenceTracker {
 public:
  explicit ConvergenceTracker(ConvergenceConfig config);

  /// Ingest the endpoint work (kcal/mol) of one completed pull and return
  /// the refreshed diagnostics.
  const ConvergenceState& add_work(double work_kcal);

  [[nodiscard]] const ConvergenceState& state() const { return state_; }
  [[nodiscard]] const std::vector<double>& works() const { return works_; }
  [[nodiscard]] const ConvergenceConfig& config() const { return config_; }

 private:
  void recompute();

  ConvergenceConfig config_;
  std::vector<double> works_;
  ConvergenceState state_;
};

/// Endpoint work of one pull at λ = pull_distance under the campaign's
/// work-source convention (same interpolation / force-reintegration path
/// the batch JE analysis uses, so streaming and final estimates agree).
[[nodiscard]] double endpoint_work(const spice::smd::PullResult& pull, double pull_distance,
                                   WorkSource source);

/// Batch form for ensemble waves: endpoint work of each pull, in input
/// order (the order streaming trackers must consume them in to match the
/// serial one-pull-at-a-time campaign).
[[nodiscard]] std::vector<double> endpoint_works(
    std::span<const spice::smd::PullResult> pulls, double pull_distance, WorkSource source);

}  // namespace spice::fe
