#include "fe/error_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace spice::fe {

std::vector<double> bootstrap_stat_error(const WorkEnsemble& ensemble, double temperature_k,
                                         Estimator estimator, std::size_t resamples,
                                         std::uint64_t seed) {
  SPICE_REQUIRE(ensemble.trajectories() >= 2, "bootstrap needs at least two trajectories");
  SPICE_REQUIRE(resamples >= 2, "bootstrap needs at least two resamples");

  Rng rng = Rng::stream(seed, 0x626f6f74 /*"boot"*/);
  const std::size_t n_traj = ensemble.trajectories();
  std::vector<RunningStats> per_point(ensemble.grid_points());

  WorkEnsemble resampled;
  resampled.lambda = ensemble.lambda;
  resampled.work.resize(n_traj);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (std::size_t t = 0; t < n_traj; ++t) {
      resampled.work[t] = ensemble.work[rng.uniform_index(n_traj)];
    }
    const PmfEstimate est = estimate_pmf(resampled, temperature_k, estimator);
    for (std::size_t g = 0; g < est.phi.size(); ++g) per_point[g].add(est.phi[g]);
  }

  std::vector<double> out(ensemble.grid_points());
  for (std::size_t g = 0; g < out.size(); ++g) out[g] = per_point[g].stddev();
  return out;
}

double cost_normalized_error(double sigma_stat, double cost_ratio) {
  SPICE_REQUIRE(cost_ratio > 0.0, "cost ratio must be positive");
  return sigma_stat * std::sqrt(cost_ratio);
}

double systematic_error(const PmfEstimate& estimate, const PmfEstimate& reference) {
  SPICE_REQUIRE(!estimate.lambda.empty(), "empty estimate");
  SPICE_REQUIRE(reference.lambda.size() >= 2, "reference needs at least two points");

  auto ref_at = [&reference](double x) {
    const auto& xs = reference.lambda;
    if (x <= xs.front()) return reference.phi.front();
    if (x >= xs.back()) return reference.phi.back();
    const auto it = std::lower_bound(xs.begin(), xs.end(), x);
    const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
    const std::size_t lo = hi - 1;
    const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    return reference.phi[lo] * (1.0 - t) + reference.phi[hi] * t;
  };

  RunningStats deviation;
  for (std::size_t g = 0; g < estimate.lambda.size(); ++g) {
    const double x = estimate.lambda[g];
    if (x < reference.lambda.front() || x > reference.lambda.back()) continue;
    deviation.add(std::abs(estimate.phi[g] - ref_at(x)));
  }
  SPICE_REQUIRE(deviation.count() > 0, "estimate and reference grids do not overlap");
  return deviation.mean();
}

ConfidenceBand bootstrap_confidence_band(const WorkEnsemble& ensemble, double temperature_k,
                                         Estimator estimator, std::size_t resamples,
                                         std::uint64_t seed, double alpha) {
  SPICE_REQUIRE(ensemble.trajectories() >= 2, "confidence band needs ≥ 2 trajectories");
  SPICE_REQUIRE(resamples >= 10, "confidence band needs ≥ 10 resamples");
  SPICE_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");

  Rng rng = Rng::stream(seed, 0x62616e64 /*"band"*/);
  const std::size_t n_traj = ensemble.trajectories();
  std::vector<std::vector<double>> per_point(ensemble.grid_points());
  for (auto& column : per_point) column.reserve(resamples);

  WorkEnsemble resampled;
  resampled.lambda = ensemble.lambda;
  resampled.work.resize(n_traj);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (std::size_t t = 0; t < n_traj; ++t) {
      resampled.work[t] = ensemble.work[rng.uniform_index(n_traj)];
    }
    const PmfEstimate est = estimate_pmf(resampled, temperature_k, estimator);
    for (std::size_t g = 0; g < est.phi.size(); ++g) per_point[g].push_back(est.phi[g]);
  }

  ConfidenceBand band;
  band.lambda = ensemble.lambda;
  band.lower.resize(ensemble.grid_points());
  band.upper.resize(ensemble.grid_points());
  for (std::size_t g = 0; g < ensemble.grid_points(); ++g) {
    band.lower[g] = percentile(per_point[g], 100.0 * alpha / 2.0);
    band.upper[g] = percentile(per_point[g], 100.0 * (1.0 - alpha / 2.0));
  }
  return band;
}

double ParameterScore::combined() const {
  return std::sqrt(sigma_stat * sigma_stat + sigma_sys * sigma_sys);
}

double average_error(const std::vector<double>& per_point) {
  SPICE_REQUIRE(!per_point.empty(), "empty error vector");
  RunningStats s;
  for (double e : per_point) s.add(e);
  return s.mean();
}

const ParameterScore& best_score(const std::vector<ParameterScore>& scores) {
  SPICE_REQUIRE(!scores.empty(), "no parameter scores");
  const auto it = std::min_element(scores.begin(), scores.end(),
                                   [](const ParameterScore& a, const ParameterScore& b) {
                                     return a.combined() < b.combined();
                                   });
  return *it;
}

}  // namespace spice::fe
