#include "fe/ti.hpp"

#include <memory>

#include "common/error.hpp"
#include "smd/restraint.hpp"

namespace spice::fe {

PmfEstimate integrate_mean_force(std::span<const TiPoint> points) {
  SPICE_REQUIRE(points.size() >= 2, "TI needs at least two points");
  PmfEstimate pmf;
  pmf.lambda.reserve(points.size());
  pmf.phi.reserve(points.size());
  pmf.lambda.push_back(points.front().lambda);
  pmf.phi.push_back(0.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    SPICE_REQUIRE(points[i].lambda > points[i - 1].lambda, "TI points must be λ-ordered");
    const double dx = points[i].lambda - points[i - 1].lambda;
    const double area = 0.5 * (points[i].mean_force + points[i - 1].mean_force) * dx;
    pmf.lambda.push_back(points[i].lambda);
    pmf.phi.push_back(pmf.phi.back() + area);
  }
  return pmf;
}

TiResult run_thermodynamic_integration(spice::md::Engine& engine,
                                       std::span<const std::uint32_t> atoms,
                                       const Vec3& direction, const Vec3& com_reference,
                                       const TiConfig& config) {
  SPICE_REQUIRE(config.points >= 2, "TI needs at least two λ points");
  SPICE_REQUIRE(config.xi_max > config.xi_min, "TI range must be non-empty");

  auto restraint = std::make_shared<spice::smd::StaticRestraint>(
      std::vector<std::uint32_t>(atoms.begin(), atoms.end()), direction, config.kappa,
      config.xi_min);
  restraint->attach_reference(com_reference);
  engine.add_contribution(restraint);

  TiResult result;
  result.points.reserve(config.points);
  for (std::size_t k = 0; k < config.points; ++k) {
    const double lambda =
        config.xi_min + (config.xi_max - config.xi_min) * static_cast<double>(k) /
                            static_cast<double>(config.points - 1);
    restraint->set_center(lambda);
    engine.step(config.equilibration_steps);
    restraint->reset_statistics();
    engine.step(config.sampling_steps);

    TiPoint p;
    p.lambda = lambda;
    p.mean_force = restraint->force_stats().mean();
    p.mean_force_error = restraint->force_stats().std_error();
    result.points.push_back(p);
  }
  result.pmf = integrate_mean_force(result.points);
  return result;
}

}  // namespace spice::fe
