#pragma once
// Statistical and systematic error analysis for SMD-JE PMFs — the machinery
// behind the paper's Fig. 4 parameter study.
//
// σ_stat: trajectory-bootstrap standard error of the JE estimate, averaged
//         over the λ-grid. The paper normalizes statistical errors for
//         compute cost ("in the time one sample at v = 12.5 Å/ns can be
//         generated, eight samples at v = 100 Å/ns can be generated; the
//         statistical error of the former should be set to √8 of the
//         latter"). Running the sweep with sample counts proportional to v
//         realises exactly that normalization; an explicit √-cost rescale
//         is also provided for equal-sample comparisons.
//
// σ_sys:  mean absolute deviation of the JE estimate from the reference
//         ("putatively correct") PMF — in the paper, the adiabatic limit;
//         here, an umbrella-sampling/WHAM reference on the same system.

#include <cstdint>
#include <vector>

#include "fe/jarzynski.hpp"

namespace spice::fe {

/// σ_stat(λ) by bootstrap over trajectories: resample the ensemble's rows
/// with replacement `resamples` times and take the stddev of the resulting
/// JE estimates at each grid point.
[[nodiscard]] std::vector<double> bootstrap_stat_error(const WorkEnsemble& ensemble,
                                                       double temperature_k,
                                                       Estimator estimator,
                                                       std::size_t resamples,
                                                       std::uint64_t seed);

/// Rescale an equal-sample statistical error to equal-compute-cost terms:
/// a protocol that is `cost_ratio`× more expensive per sample gets its
/// error multiplied by √cost_ratio (fewer samples per unit compute).
[[nodiscard]] double cost_normalized_error(double sigma_stat, double cost_ratio);

/// Mean |Φ_est − Φ_ref| over the overlapping λ-range; the reference is
/// linearly interpolated onto the estimate's grid.
[[nodiscard]] double systematic_error(const PmfEstimate& estimate, const PmfEstimate& reference);

/// Scalar summary of one (κ, v) parameter combination.
struct ParameterScore {
  double kappa_pn = 0.0;       ///< pN/Å
  double velocity_ns = 0.0;    ///< Å/ns
  std::size_t samples = 0;     ///< trajectories used
  double sigma_stat = 0.0;     ///< λ-averaged bootstrap error, kcal/mol
  double sigma_sys = 0.0;      ///< mean |Φ − Φ_ref|, kcal/mol
  /// Combined figure of merit: √(σ_stat² + σ_sys²) — lower is better.
  [[nodiscard]] double combined() const;
};

/// λ-average of a per-grid-point error vector.
[[nodiscard]] double average_error(const std::vector<double>& per_point);

/// Pointwise bootstrap confidence band for a PMF estimate: lower/upper are
/// the (α/2, 1−α/2) percentiles of the trajectory-bootstrap distribution
/// of Φ at each λ-grid point.
struct ConfidenceBand {
  std::vector<double> lambda;
  std::vector<double> lower;
  std::vector<double> upper;
};

[[nodiscard]] ConfidenceBand bootstrap_confidence_band(const WorkEnsemble& ensemble,
                                                       double temperature_k,
                                                       Estimator estimator,
                                                       std::size_t resamples,
                                                       std::uint64_t seed,
                                                       double alpha = 0.1);

/// Pick the winning parameter set: smallest combined error, with ties
/// (within `tie_tolerance`, kcal/mol) broken toward the cheaper protocol —
/// the paper's rationale for preferring v = 12.5 over 25 at κ = 100 is
/// that equal-error protocols should favour the one giving more samples
/// per unit compute (lower v ⇒ costlier per sample ⇒ prefer *higher* v on
/// a pure-cost tie; the paper instead fixes total cost and picks the
/// *lower* v for its smaller systematic bias — see spice::ParameterOptimizer
/// for the full, documented rule).
[[nodiscard]] const ParameterScore& best_score(const std::vector<ParameterScore>& scores);

}  // namespace spice::fe
