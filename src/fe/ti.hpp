#pragma once
// Thermodynamic integration along the COM reaction coordinate — the
// extension named in the paper's conclusion ("the grid computing
// infrastructure used here ... can be easily extended to compute free
// energies using different approaches (e.g., thermodynamic integration)").
//
// A stiff restraint holds ξ near each λ grid point; the mean restraint
// force ⟨κ(λ − ξ)⟩ estimates dF/dλ, and the profile is recovered by
// trapezoidal integration. Like the SMD-JE campaign, each λ point is an
// independent job — which is why the same grid infrastructure runs both.

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "fe/jarzynski.hpp"
#include "md/engine.hpp"

namespace spice::fe {

struct TiConfig {
  double xi_min = 0.0;
  double xi_max = 10.0;
  std::size_t points = 11;
  double kappa = 30.0;  ///< restraint stiffness, internal units (stiff!)
  std::size_t equilibration_steps = 2000;
  std::size_t sampling_steps = 8000;
};

struct TiPoint {
  double lambda = 0.0;
  double mean_force = 0.0;       ///< ⟨dU/dλ⟩ = ⟨κ(λ − ξ)⟩, kcal/mol/Å
  double mean_force_error = 0.0; ///< standard error of the mean
};

struct TiResult {
  std::vector<TiPoint> points;
  PmfEstimate pmf;  ///< trapezoidal integral of the mean force, Φ(ξ_min)=0
};

/// Integrate the mean-force points (assumed λ-ordered) into a PMF.
[[nodiscard]] PmfEstimate integrate_mean_force(std::span<const TiPoint> points);

/// Driver: sequential restrained sampling at each λ point.
[[nodiscard]] TiResult run_thermodynamic_integration(spice::md::Engine& engine,
                                                     std::span<const std::uint32_t> atoms,
                                                     const Vec3& direction,
                                                     const Vec3& com_reference,
                                                     const TiConfig& config);

}  // namespace spice::fe
