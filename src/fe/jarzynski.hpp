#pragma once
// Jarzynski-equality free-energy estimation from SMD work ensembles.
//
// Jarzynski (PRL 78, 2690, 1997): ⟨exp(−βW)⟩ = exp(−βΔF) over an ensemble
// of non-equilibrium realizations of the same pulling protocol. Applied to
// SMD with a stiff spring (Park et al., JCP 119, 3559, 2003) this yields
// the PMF Φ(λ) along the pulling coordinate:
//
//   Φ(λ) ≈ −kT ln ⟨ exp(−β W(λ)) ⟩          (exponential estimator)
//   Φ(λ) ≈ ⟨W⟩                               (1st cumulant)
//   Φ(λ) ≈ ⟨W⟩ − β/2 · Var(W)                (2nd cumulant)
//
// The exponential estimator is exact in expectation but has the infamous
// small-sample bias (dominated by rare low-work trajectories); the 2nd
// cumulant is exact only for Gaussian work distributions (near-equilibrium
// pulls). Both are provided; the paper's Fig. 4 uses the exponential form.

#include <cstddef>
#include <span>
#include <vector>

#include "smd/pulling.hpp"

namespace spice::fe {

/// Works of an ensemble of pulls, resampled onto a common λ-grid.
/// work[t][g] is trajectory t's accumulated work at lambda[g].
struct WorkEnsemble {
  std::vector<double> lambda;
  std::vector<std::vector<double>> work;

  [[nodiscard]] std::size_t trajectories() const { return work.size(); }
  [[nodiscard]] std::size_t grid_points() const { return lambda.size(); }
};

/// Where the per-trajectory work values come from.
enum class WorkSource {
  /// The engine's exact per-step accumulation (numerically ideal).
  Accumulated,
  /// Trapezoidal re-integration of the *recorded* spring-force series,
  /// W ≈ Σ F·v·Δt over the sampled points — the workflow of the original
  /// system, where NAMD writes SMD forces at an output frequency and the
  /// work is integrated offline. Force sampling injects noise ∝ √κ, which
  /// is exactly why the paper finds κ = 1000 pN/Å "extremely noisy".
  SampledForce,
};

/// The WorkSource::SampledForce primitive: replace each sample's work with
/// the trapezoidal integral of the recorded spring force over the ANCHOR
/// path, W(λ_k) = Σ ½(F_i + F_{i+1})·(λ_{i+1} − λ_i). Integrating over λ
/// rather than F·v̄·dt matters whenever the anchor is not in uniform
/// motion — with SmdParams::hold_ps > 0 the spring is stationary at first
/// (dλ = 0, so dW = 0 regardless of the settling force), and a time-based
/// integral would over-accumulate work during that phase.
[[nodiscard]] spice::smd::PullResult reintegrate_from_force(
    const spice::smd::PullResult& pull);

/// Linearly interpolate each pull's W(λ) onto `points` evenly spaced grid
/// values in [0, lambda_max]. Every pull must reach lambda_max.
[[nodiscard]] WorkEnsemble grid_work_ensemble(std::span<const spice::smd::PullResult> pulls,
                                              double lambda_max, std::size_t points,
                                              WorkSource source = WorkSource::Accumulated);

enum class Estimator {
  Exponential,      ///< full Jarzynski exponential average
  FirstCumulant,    ///< mean work (upper bound on Φ)
  SecondCumulant,   ///< Gaussian-work approximation
};

/// A PMF estimate on the ensemble's λ-grid.
struct PmfEstimate {
  std::vector<double> lambda;
  std::vector<double> phi;  ///< kcal/mol, Φ(0) = 0
};

/// Estimate the PMF from a work ensemble at temperature T (kelvin).
[[nodiscard]] PmfEstimate estimate_pmf(const WorkEnsemble& ensemble, double temperature_k,
                                       Estimator estimator = Estimator::Exponential);

/// Mean dissipated work at the end of the pull: ⟨W⟩ − ΔF_JE. A measure of
/// how far from equilibrium the protocol is (grows with pulling velocity).
[[nodiscard]] double mean_dissipated_work(const WorkEnsemble& ensemble, double temperature_k);

/// Stiff-spring (2nd order) correction of Park et al.: converts the
/// free energy F(λ) of the combined system+spring into the system PMF
/// Φ(ξ) ≈ F(λ) − (1/2κ)(dF/dλ)². `kappa` in internal units (kcal/mol/Å²).
[[nodiscard]] PmfEstimate stiff_spring_correction(const PmfEstimate& f_lambda, double kappa);

}  // namespace spice::fe
