#pragma once
// Umbrella sampling + WHAM: the equilibrium reference PMF.
//
// The paper calls the adiabatic (infinitely slow pulling) limit the
// "putatively correct PMF" but never computes it directly. To quantify
// σ_sys we need that reference, so the reproduction computes it with
// umbrella sampling along the same COM reaction coordinate, unbiased by
// the Weighted Histogram Analysis Method (WHAM) — a standard equilibrium
// method whose systematic error is independent of the SMD-JE parameters
// under study.

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "fe/jarzynski.hpp"
#include "md/engine.hpp"

namespace spice::fe {

/// One umbrella window's data: bias U_k(ξ) = ½ κ (ξ − center)².
struct UmbrellaWindow {
  double center = 0.0;             ///< bias centre, Å
  double kappa = 0.0;              ///< bias stiffness, kcal/mol/Å²
  std::vector<double> xi_samples;  ///< equilibrium ξ samples under the bias
};

struct WhamConfig {
  std::size_t bins = 60;
  double tolerance = 1e-8;       ///< max |Δf_k| (kcal/mol) for convergence
  std::size_t max_iterations = 50000;
};

struct WhamResult {
  PmfEstimate pmf;                   ///< Φ(ξ) at bin centres, min shifted to data range
  std::vector<double> window_free_energies;  ///< converged f_k, kcal/mol
  std::size_t iterations = 0;
  bool converged = false;
};

/// Solve the WHAM equations over the given windows at temperature T.
/// The histogram range is [min ξ, max ξ] over all samples.
[[nodiscard]] WhamResult wham(std::span<const UmbrellaWindow> windows, double temperature_k,
                              const WhamConfig& config = {});

/// Driver: run a ladder of umbrella windows on `engine` along `direction`,
/// restraining the COM displacement (measured from `com_reference`) of
/// `atoms` at evenly spaced centres in [xi_min, xi_max], then WHAM-unbias.
struct UmbrellaConfig {
  double xi_min = 0.0;
  double xi_max = 10.0;
  std::size_t windows = 21;
  double kappa = 10.0;  ///< bias stiffness, internal units (kcal/mol/Å²)
  std::size_t equilibration_steps = 2000;
  std::size_t sampling_steps = 8000;
  WhamConfig wham;
};

[[nodiscard]] WhamResult run_umbrella_sampling(spice::md::Engine& engine,
                                               std::span<const std::uint32_t> atoms,
                                               const Vec3& direction, const Vec3& com_reference,
                                               const UmbrellaConfig& config);

}  // namespace spice::fe
