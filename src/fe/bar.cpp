#include "fe/bar.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "common/units.hpp"

namespace spice::fe {

namespace {
/// The BAR implicit equation residual at trial ΔF:
///   g(ΔF) = Σ_F 1/(1+r·exp(β(W−ΔF))) − Σ_R 1/(1+(1/r)·exp(β(W̃+ΔF)))
/// with r = n_F/n_R. The root of g is the BAR estimate.
double bar_residual(std::span<const double> wf, std::span<const double> wr, double beta,
                    double delta_f) {
  const double r = static_cast<double>(wf.size()) / static_cast<double>(wr.size());
  double lhs = 0.0;
  for (const double w : wf) {
    lhs += 1.0 / (1.0 + r * std::exp(beta * (w - delta_f)));
  }
  double rhs = 0.0;
  for (const double w : wr) {
    rhs += 1.0 / (1.0 + (1.0 / r) * std::exp(beta * (w + delta_f)));
  }
  return lhs - rhs;
}
}  // namespace

BarResult bennett_acceptance_ratio(std::span<const double> forward_work,
                                   std::span<const double> reverse_work,
                                   double temperature_k) {
  SPICE_REQUIRE(!forward_work.empty() && !reverse_work.empty(),
                "BAR needs both forward and reverse work samples");
  SPICE_REQUIRE(temperature_k > 0.0, "temperature must be positive");
  const double beta = 1.0 / units::kT(temperature_k);

  // Bracket the root: ΔF must lie between −max|W| − slack and +max|W| + slack.
  double lo = -1.0;
  double hi = 1.0;
  for (const double w : forward_work) hi = std::max(hi, std::abs(w) + 1.0);
  for (const double w : reverse_work) hi = std::max(hi, std::abs(w) + 1.0);
  lo = -hi;

  // g is monotone decreasing in ΔF; expand the bracket if needed.
  BarResult result;
  double g_lo = bar_residual(forward_work, reverse_work, beta, lo);
  double g_hi = bar_residual(forward_work, reverse_work, beta, hi);
  std::size_t expansions = 0;
  while (g_lo * g_hi > 0.0 && expansions < 60) {
    lo *= 2.0;
    hi *= 2.0;
    g_lo = bar_residual(forward_work, reverse_work, beta, lo);
    g_hi = bar_residual(forward_work, reverse_work, beta, hi);
    ++expansions;
  }
  if (g_lo * g_hi > 0.0) {
    // Degenerate (e.g. zero-variance ensembles); fall back to the midpoint
    // of mean forward and negated mean reverse work.
    RunningStats f;
    for (const double w : forward_work) f.add(w);
    RunningStats r;
    for (const double w : reverse_work) r.add(w);
    result.delta_f = 0.5 * (f.mean() - r.mean());
    result.converged = false;
    return result;
  }

  for (std::size_t iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double g_mid = bar_residual(forward_work, reverse_work, beta, mid);
    result.iterations = iter + 1;
    if (std::abs(g_mid) < 1e-10 || hi - lo < 1e-12) {
      result.delta_f = mid;
      result.crossing_gap = g_mid;
      result.converged = true;
      return result;
    }
    if (g_lo * g_mid <= 0.0) {
      hi = mid;
    } else {
      lo = mid;
      g_lo = g_mid;
    }
  }
  result.delta_f = 0.5 * (lo + hi);
  result.crossing_gap = bar_residual(forward_work, reverse_work, beta, result.delta_f);
  result.converged = true;
  return result;
}

double crooks_gaussian_crossing(std::span<const double> forward_work,
                                std::span<const double> reverse_work) {
  SPICE_REQUIRE(forward_work.size() >= 2 && reverse_work.size() >= 2,
                "Crooks crossing needs ≥2 samples per direction");
  RunningStats f;
  for (const double w : forward_work) f.add(w);
  RunningStats r;
  for (const double w : reverse_work) r.add(-w);  // negated reverse works

  const double mu1 = f.mean();
  const double mu2 = r.mean();
  const double s1 = std::max(f.stddev(), 1e-9);
  const double s2 = std::max(r.stddev(), 1e-9);

  // Crossing of two Gaussians: solve (x−μ1)²/s1² − (x−μ2)²/s2² = 2 ln(s2/s1).
  if (std::abs(s1 - s2) < 1e-12) {
    return 0.5 * (mu1 + mu2);
  }
  const double a = 1.0 / (s1 * s1) - 1.0 / (s2 * s2);
  const double b = -2.0 * (mu1 / (s1 * s1) - mu2 / (s2 * s2));
  const double c =
      mu1 * mu1 / (s1 * s1) - mu2 * mu2 / (s2 * s2) - 2.0 * std::log(s2 / s1);
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return 0.5 * (mu1 + mu2);
  const double root1 = (-b + std::sqrt(disc)) / (2.0 * a);
  const double root2 = (-b - std::sqrt(disc)) / (2.0 * a);
  // Choose the root between the means (the physical crossing).
  const double lo = std::min(mu1, mu2);
  const double hi = std::max(mu1, mu2);
  if (root1 >= lo && root1 <= hi) return root1;
  if (root2 >= lo && root2 <= hi) return root2;
  return 0.5 * (mu1 + mu2);
}

double work_distribution_overlap(std::span<const double> forward_work,
                                 std::span<const double> reverse_work) {
  SPICE_REQUIRE(forward_work.size() >= 2 && reverse_work.size() >= 2,
                "overlap needs ≥2 samples per direction");
  RunningStats f;
  for (const double w : forward_work) f.add(w);
  RunningStats r;
  for (const double w : reverse_work) r.add(-w);
  const double v1 = std::max(f.variance(), 1e-12);
  const double v2 = std::max(r.variance(), 1e-12);
  const double dmu = f.mean() - r.mean();
  // Bhattacharyya coefficient for two Gaussians.
  const double bc = std::sqrt(2.0 * std::sqrt(v1 * v2) / (v1 + v2)) *
                    std::exp(-dmu * dmu / (4.0 * (v1 + v2)));
  return bc;
}

}  // namespace spice::fe
