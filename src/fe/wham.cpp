#include "fe/wham.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/error.hpp"
#include "common/units.hpp"
#include "smd/restraint.hpp"

namespace spice::fe {

WhamResult wham(std::span<const UmbrellaWindow> windows, double temperature_k,
                const WhamConfig& config) {
  SPICE_REQUIRE(windows.size() >= 2, "WHAM needs at least two windows");
  SPICE_REQUIRE(temperature_k > 0.0, "temperature must be positive");
  for (const auto& w : windows) {
    SPICE_REQUIRE(!w.xi_samples.empty(), "umbrella window has no samples");
    SPICE_REQUIRE(w.kappa > 0.0, "umbrella window needs positive kappa");
  }

  const double kt = units::kT(temperature_k);
  const double beta = 1.0 / kt;

  // Histogram range over all samples.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const auto& w : windows) {
    for (double x : w.xi_samples) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  SPICE_REQUIRE(hi > lo, "all umbrella samples identical");
  // Nudge the upper edge so the max sample lands in the last bin.
  hi += (hi - lo) * 1e-9 + 1e-12;

  const std::size_t bins = config.bins;
  const double width = (hi - lo) / static_cast<double>(bins);
  const std::size_t n_windows = windows.size();

  // n[k][b]: counts; N[k]: totals.
  std::vector<std::vector<double>> counts(n_windows, std::vector<double>(bins, 0.0));
  std::vector<double> totals(n_windows, 0.0);
  for (std::size_t k = 0; k < n_windows; ++k) {
    for (double x : windows[k].xi_samples) {
      const auto b = static_cast<std::size_t>((x - lo) / width);
      counts[k][std::min(b, bins - 1)] += 1.0;
      totals[k] += 1.0;
    }
  }
  std::vector<double> sum_counts(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b) {
    for (std::size_t k = 0; k < n_windows; ++k) sum_counts[b] += counts[k][b];
  }

  // Bias energies U_k at bin centres.
  std::vector<double> centers(bins);
  for (std::size_t b = 0; b < bins; ++b) centers[b] = lo + (static_cast<double>(b) + 0.5) * width;
  std::vector<std::vector<double>> bias(n_windows, std::vector<double>(bins));
  for (std::size_t k = 0; k < n_windows; ++k) {
    for (std::size_t b = 0; b < bins; ++b) {
      const double d = centers[b] - windows[k].center;
      bias[k][b] = 0.5 * windows[k].kappa * d * d;
    }
  }

  // Self-consistent iteration on the window free energies f_k.
  std::vector<double> f(n_windows, 0.0);
  std::vector<double> p(bins, 0.0);
  WhamResult result;
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    // p(b) ∝ Σ_k n_k(b) / Σ_k N_k exp(−β (U_k(b) − f_k))
    for (std::size_t b = 0; b < bins; ++b) {
      double denom = 0.0;
      for (std::size_t k = 0; k < n_windows; ++k) {
        denom += totals[k] * std::exp(-beta * (bias[k][b] - f[k]));
      }
      p[b] = denom > 0.0 ? sum_counts[b] / denom : 0.0;
    }
    // f_k = −kT ln Σ_b p(b) exp(−β U_k(b))
    double max_change = 0.0;
    for (std::size_t k = 0; k < n_windows; ++k) {
      double z = 0.0;
      for (std::size_t b = 0; b < bins; ++b) z += p[b] * std::exp(-beta * bias[k][b]);
      const double f_new = -kt * std::log(std::max(z, 1e-300));
      max_change = std::max(max_change, std::abs(f_new - f[k]));
      f[k] = f_new;
    }
    // Gauge fix: f_0 = 0.
    const double f0 = f[0];
    for (auto& fk : f) fk -= f0;
    result.iterations = iter + 1;
    if (max_change < config.tolerance) {
      result.converged = true;
      break;
    }
  }

  // PMF from the unbiased distribution; drop empty bins.
  result.pmf.lambda.reserve(bins);
  result.pmf.phi.reserve(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    if (p[b] <= 0.0 || sum_counts[b] <= 0.0) continue;
    result.pmf.lambda.push_back(centers[b]);
    result.pmf.phi.push_back(-kt * std::log(p[b]));
  }
  SPICE_REQUIRE(result.pmf.lambda.size() >= 2, "WHAM produced fewer than two populated bins");
  // Anchor Φ = 0 at the first populated bin (the JE estimates anchor at
  // λ = 0; callers re-anchor as needed via fe::shift_pmf).
  const double phi0 = result.pmf.phi.front();
  for (auto& v : result.pmf.phi) v -= phi0;
  result.window_free_energies = std::move(f);
  return result;
}

WhamResult run_umbrella_sampling(spice::md::Engine& engine, std::span<const std::uint32_t> atoms,
                                 const Vec3& direction, const Vec3& com_reference,
                                 const UmbrellaConfig& config) {
  SPICE_REQUIRE(config.windows >= 2, "umbrella sampling needs at least two windows");
  SPICE_REQUIRE(config.xi_max > config.xi_min, "umbrella range must be non-empty");

  auto restraint = std::make_shared<spice::smd::StaticRestraint>(
      std::vector<std::uint32_t>(atoms.begin(), atoms.end()), direction, config.kappa,
      config.xi_min);
  restraint->attach_reference(com_reference);
  restraint->set_record_samples(true);
  engine.add_contribution(restraint);

  std::vector<UmbrellaWindow> windows;
  windows.reserve(config.windows);
  for (std::size_t k = 0; k < config.windows; ++k) {
    const double center =
        config.xi_min + (config.xi_max - config.xi_min) * static_cast<double>(k) /
                            static_cast<double>(config.windows - 1);
    restraint->set_center(center);
    engine.step(config.equilibration_steps);
    restraint->reset_statistics();
    engine.step(config.sampling_steps);

    UmbrellaWindow w;
    w.center = center;
    w.kappa = config.kappa;
    w.xi_samples = restraint->xi_samples();
    windows.push_back(std::move(w));
  }
  return wham(windows, engine.config().temperature, config.wham);
}

}  // namespace spice::fe
