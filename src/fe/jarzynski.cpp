#include "fe/jarzynski.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/statistics.hpp"
#include "common/units.hpp"

namespace spice::fe {

namespace {
/// Interpolate a pull's work at anchor displacement `lambda`.
double work_at_lambda(const spice::smd::PullResult& pull, double lambda) {
  const auto& s = pull.samples;
  SPICE_REQUIRE(!s.empty(), "pull has no samples");
  if (lambda <= s.front().lambda) return s.front().work;
  SPICE_REQUIRE(lambda <= s.back().lambda + 1e-9,
                "pull did not reach the requested lambda");
  // Samples are time-ordered and λ is monotone in time.
  const auto it = std::lower_bound(
      s.begin(), s.end(), lambda,
      [](const spice::smd::PullSample& a, double value) { return a.lambda < value; });
  if (it == s.begin()) return it->work;
  if (it == s.end()) return s.back().work;
  const auto prev = it - 1;
  const double span = it->lambda - prev->lambda;
  if (span <= 0.0) return it->work;
  const double t = (lambda - prev->lambda) / span;
  return prev->work * (1.0 - t) + it->work * t;
}
}  // namespace

spice::smd::PullResult reintegrate_from_force(const spice::smd::PullResult& pull) {
  spice::smd::PullResult out = pull;
  double w = 0.0;
  for (std::size_t i = 1; i < out.samples.size(); ++i) {
    const auto& prev = out.samples[i - 1];
    auto& cur = out.samples[i];
    w += 0.5 * (prev.force + cur.force) * (cur.lambda - prev.lambda);
    cur.work = w;
  }
  if (!out.samples.empty()) out.samples.front().work = 0.0;
  return out;
}

WorkEnsemble grid_work_ensemble(std::span<const spice::smd::PullResult> pulls, double lambda_max,
                                std::size_t points, WorkSource source) {
  SPICE_REQUIRE(!pulls.empty(), "work ensemble needs at least one pull");
  SPICE_REQUIRE(lambda_max > 0.0, "lambda_max must be positive");
  SPICE_REQUIRE(points >= 2, "grid needs at least two points");

  WorkEnsemble ensemble;
  ensemble.lambda.resize(points);
  for (std::size_t g = 0; g < points; ++g) {
    ensemble.lambda[g] = lambda_max * static_cast<double>(g) / static_cast<double>(points - 1);
  }
  ensemble.work.reserve(pulls.size());
  for (const auto& pull : pulls) {
    std::vector<double> w(points);
    if (source == WorkSource::SampledForce) {
      SPICE_REQUIRE(pull.samples.size() >= 2, "sampled-force work needs ≥ 2 samples");
      const spice::smd::PullResult reintegrated = reintegrate_from_force(pull);
      for (std::size_t g = 0; g < points; ++g) {
        w[g] = work_at_lambda(reintegrated, ensemble.lambda[g]);
      }
    } else {
      for (std::size_t g = 0; g < points; ++g) w[g] = work_at_lambda(pull, ensemble.lambda[g]);
    }
    ensemble.work.push_back(std::move(w));
  }
  return ensemble;
}

PmfEstimate estimate_pmf(const WorkEnsemble& ensemble, double temperature_k,
                         Estimator estimator) {
  SPICE_REQUIRE(ensemble.trajectories() > 0, "empty work ensemble");
  SPICE_REQUIRE(temperature_k > 0.0, "temperature must be positive");
  const double kt = units::kT(temperature_k);
  const double beta = 1.0 / kt;

  PmfEstimate out;
  out.lambda = ensemble.lambda;
  out.phi.resize(ensemble.grid_points());

  std::vector<double> column(ensemble.trajectories());
  for (std::size_t g = 0; g < ensemble.grid_points(); ++g) {
    for (std::size_t t = 0; t < ensemble.trajectories(); ++t) {
      column[t] = ensemble.work[t][g];
    }
    switch (estimator) {
      case Estimator::Exponential: {
        // −kT ln ⟨exp(−βW)⟩ via log-mean-exp for numerical stability.
        std::vector<double> neg_beta_w(column.size());
        for (std::size_t t = 0; t < column.size(); ++t) neg_beta_w[t] = -beta * column[t];
        out.phi[g] = -kt * log_mean_exp(neg_beta_w);
        break;
      }
      case Estimator::FirstCumulant:
        out.phi[g] = mean(column);
        break;
      case Estimator::SecondCumulant:
        out.phi[g] = mean(column) - 0.5 * beta * variance(column);
        break;
    }
  }
  return out;
}

double mean_dissipated_work(const WorkEnsemble& ensemble, double temperature_k) {
  SPICE_REQUIRE(ensemble.grid_points() > 0, "empty work ensemble");
  const std::size_t last = ensemble.grid_points() - 1;
  std::vector<double> final_work(ensemble.trajectories());
  for (std::size_t t = 0; t < ensemble.trajectories(); ++t) {
    final_work[t] = ensemble.work[t][last];
  }
  const PmfEstimate je = estimate_pmf(ensemble, temperature_k, Estimator::Exponential);
  return mean(final_work) - je.phi[last];
}

PmfEstimate stiff_spring_correction(const PmfEstimate& f_lambda, double kappa) {
  SPICE_REQUIRE(kappa > 0.0, "spring constant must be positive");
  SPICE_REQUIRE(f_lambda.lambda.size() >= 3, "correction needs at least 3 grid points");
  PmfEstimate out = f_lambda;
  const std::size_t n = f_lambda.lambda.size();
  for (std::size_t g = 0; g < n; ++g) {
    // Central finite difference for dF/dλ (one-sided at the ends).
    const std::size_t lo = g == 0 ? 0 : g - 1;
    const std::size_t hi = g + 1 == n ? g : g + 1;
    const double df = (f_lambda.phi[hi] - f_lambda.phi[lo]) /
                      (f_lambda.lambda[hi] - f_lambda.lambda[lo]);
    out.phi[g] = f_lambda.phi[g] - df * df / (2.0 * kappa);
  }
  return out;
}

}  // namespace spice::fe
