#include "steering/session_log.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace spice::steering {

namespace {
constexpr std::uint32_t kLogMagic = 0x53504c47;  // "SPLG"
constexpr std::uint32_t kLogVersion = 1;
}  // namespace

void SessionLog::record(std::uint64_t step, const SteeringMessage& message) {
  SPICE_REQUIRE(entries_.empty() || entries_.back().step <= step,
                "session log must be recorded in step order");
  entries_.push_back({step, message});
}

std::vector<std::uint8_t> SessionLog::serialize() const {
  BinaryWriter w;
  w.write_u32(kLogMagic);
  w.write_u32(kLogVersion);
  w.write_u64(entries_.size());
  for (const auto& e : entries_) {
    w.write_u64(e.step);
    write_message(w, e.message);
  }
  return w.take();
}

SessionLog SessionLog::deserialize(std::span<const std::uint8_t> bytes) {
  BinaryReader r(bytes);
  SPICE_REQUIRE(r.read_u32() == kLogMagic, "not a SPICE session log");
  SPICE_REQUIRE(r.read_u32() == kLogVersion, "unsupported session-log version");
  const std::uint64_t count = r.read_u64();
  SessionLog log;
  for (std::uint64_t i = 0; i < count; ++i) {
    LoggedMessage e;
    e.step = r.read_u64();
    e.message = read_message(r);
    log.entries_.push_back(std::move(e));
  }
  return log;
}

std::size_t replay_session(SteerableSimulation& simulation, const SessionLog& log,
                           std::size_t total_steps) {
  std::size_t taken = 0;
  std::size_t next = 0;
  const auto& entries = log.entries();
  // Skip entries scheduled before the simulation's current step (supports
  // replaying a tail after restoring a checkpoint).
  const std::uint64_t start_step = simulation.engine().step_count();
  while (next < entries.size() && entries[next].step < start_step) ++next;

  while (taken < total_steps) {
    // Deliver everything recorded at the current step boundary.
    const std::uint64_t now = simulation.engine().step_count();
    while (next < entries.size() && entries[next].step == now) {
      simulation.deliver(entries[next].message);
      ++next;
    }
    // Run until the next recorded step (or the end of the budget).
    const std::uint64_t target =
        next < entries.size()
            ? std::min<std::uint64_t>(entries[next].step, start_step + total_steps)
            : start_step + total_steps;
    const auto chunk = static_cast<std::size_t>(target - now);
    if (chunk == 0) {
      // A paused simulation will not advance; bail out rather than spin.
      if (simulation.run(1) == 0) break;
      ++taken;
      continue;
    }
    const std::size_t done = simulation.run(chunk);
    taken += done;
    if (done < chunk) break;  // paused or stopped mid-chunk
  }
  return taken;
}

void RecordingSteerer::steer(const SteeringMessage& message) {
  log_.record(simulation_.engine().step_count(), message);
  simulation_.deliver(message);
}

}  // namespace spice::steering
