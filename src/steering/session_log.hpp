#pragma once
// Steering-session logging and deterministic replay.
//
// The RealityGrid workflow kept records of steering activity; for
// verification-and-validation (the paper's checkpoint/clone use case) a
// recorded session must be replayable bit-for-bit. A SessionLog captures
// every steering message with the engine step at which it was applied; a
// replay delivers the same messages at the same step boundaries, so a
// fresh simulation with the same seed reproduces the steered trajectory
// exactly. Logs serialize via the common binary format.

#include <cstdint>
#include <vector>

#include "steering/messages.hpp"
#include "steering/steerable.hpp"

namespace spice::steering {

struct LoggedMessage {
  std::uint64_t step = 0;  ///< engine step count at application
  SteeringMessage message;
};

class SessionLog {
 public:
  void record(std::uint64_t step, const SteeringMessage& message);

  [[nodiscard]] const std::vector<LoggedMessage>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Serialize / parse (round-trips exactly).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static SessionLog deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::vector<LoggedMessage> entries_;
};

/// Drive `simulation` for `total_steps`, delivering each logged message at
/// its recorded step boundary. Returns steps actually taken. With the same
/// engine seed and initial state as the recorded session, the trajectory
/// is bit-identical.
std::size_t replay_session(SteerableSimulation& simulation, const SessionLog& log,
                           std::size_t total_steps);

/// Convenience recorder: wraps deliver() so interactive code can log and
/// deliver in one call.
class RecordingSteerer {
 public:
  RecordingSteerer(SteerableSimulation& simulation, SessionLog& log)
      : simulation_(simulation), log_(log) {}

  /// Deliver `message` now (applied at the next step boundary) and record
  /// it against the engine's current step count.
  void steer(const SteeringMessage& message);

 private:
  SteerableSimulation& simulation_;
  SessionLog& log_;
};

}  // namespace spice::steering
