#include "steering/registry.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace spice::steering {

void ServiceRegistry::publish(const ComponentRecord& record) {
  SPICE_REQUIRE(!record.name.empty(), "component needs a name");
  records_[record.name] = record;
}

void ServiceRegistry::unpublish(const std::string& name) { records_.erase(name); }

std::optional<ComponentRecord> ServiceRegistry::lookup(const std::string& name) const {
  const auto it = records_.find(name);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::vector<ComponentRecord> ServiceRegistry::list(ComponentKind kind) const {
  std::vector<ComponentRecord> out;
  for (const auto& [name, record] : records_) {
    if (record.kind == kind) out.push_back(record);
  }
  // Deterministic order for callers that iterate.
  std::sort(out.begin(), out.end(),
            [](const ComponentRecord& a, const ComponentRecord& b) { return a.name < b.name; });
  return out;
}

}  // namespace spice::steering
