#pragma once
// Component registry — the "intermediate grid services" of the RealityGrid
// architecture (paper Fig. 2a): simulations, visualizers and devices
// register under names; peers discover each other's network endpoints by
// lookup rather than hard-wired addresses. (In the real system these were
// OGSI/WSRF Steering Grid Services; here it is an in-process directory
// over the simulated network's host ids.)

#include <optional>
#include <string>
#include <unordered_map>

#include "net/network.hpp"

namespace spice::steering {

enum class ComponentKind { Simulation, Visualizer, HapticDevice, Steerer };

struct ComponentRecord {
  std::string name;
  ComponentKind kind = ComponentKind::Simulation;
  spice::net::HostId host = 0;
};

class ServiceRegistry {
 public:
  /// Register (or re-register) a component. Names are unique.
  void publish(const ComponentRecord& record);
  void unpublish(const std::string& name);

  [[nodiscard]] std::optional<ComponentRecord> lookup(const std::string& name) const;
  /// All records of one kind (e.g. every running simulation).
  [[nodiscard]] std::vector<ComponentRecord> list(ComponentKind kind) const;
  [[nodiscard]] std::size_t size() const { return records_.size(); }

 private:
  std::unordered_map<std::string, ComponentRecord> records_;
};

}  // namespace spice::steering
