#include "steering/messages.hpp"

namespace spice::steering {

SteeringMessage SteeringMessage::pause() { return {.type = MessageType::Pause}; }
SteeringMessage SteeringMessage::resume() { return {.type = MessageType::Resume}; }
SteeringMessage SteeringMessage::stop() { return {.type = MessageType::Stop}; }

SteeringMessage SteeringMessage::set_parameter(const std::string& name, double value) {
  SteeringMessage m;
  m.type = MessageType::SetParameter;
  m.parameter = name;
  m.value = value;
  return m;
}

SteeringMessage SteeringMessage::apply_force(const Vec3& force) {
  SteeringMessage m;
  m.type = MessageType::ApplyForce;
  m.force = force;
  return m;
}

SteeringMessage SteeringMessage::take_checkpoint(const std::string& label) {
  SteeringMessage m;
  m.type = MessageType::TakeCheckpoint;
  m.parameter = label;
  return m;
}

SteeringMessage SteeringMessage::clone_request(const std::string& label) {
  SteeringMessage m;
  m.type = MessageType::CloneRequest;
  m.parameter = label;
  return m;
}

double control_message_bytes() { return 256.0; }

}  // namespace spice::steering
