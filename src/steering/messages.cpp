#include "steering/messages.hpp"

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace spice::steering {

SteeringMessage SteeringMessage::pause() { return {.type = MessageType::Pause}; }
SteeringMessage SteeringMessage::resume() { return {.type = MessageType::Resume}; }
SteeringMessage SteeringMessage::stop() { return {.type = MessageType::Stop}; }

SteeringMessage SteeringMessage::set_parameter(const std::string& name, double value) {
  SteeringMessage m;
  m.type = MessageType::SetParameter;
  m.parameter = name;
  m.value = value;
  return m;
}

SteeringMessage SteeringMessage::apply_force(const Vec3& force) {
  SteeringMessage m;
  m.type = MessageType::ApplyForce;
  m.force = force;
  return m;
}

SteeringMessage SteeringMessage::take_checkpoint(const std::string& label) {
  SteeringMessage m;
  m.type = MessageType::TakeCheckpoint;
  m.parameter = label;
  return m;
}

SteeringMessage SteeringMessage::clone_request(const std::string& label) {
  SteeringMessage m;
  m.type = MessageType::CloneRequest;
  m.parameter = label;
  return m;
}

double control_message_bytes() { return 256.0; }

void write_message(BinaryWriter& writer, const SteeringMessage& message) {
  writer.write_u8(static_cast<std::uint8_t>(message.type));
  writer.write_u64(message.sequence);
  writer.write_string(message.parameter);
  writer.write_f64(message.value);
  writer.write_vec3(message.force);
  writer.write_u64(message.frame_id);
  writer.write_f64(message.sim_time);
}

SteeringMessage read_message(BinaryReader& reader) {
  SteeringMessage message;
  const std::uint8_t tag = reader.read_u8();
  SPICE_REQUIRE(tag <= static_cast<std::uint8_t>(MessageType::FrameAck),
                "unknown steering message type tag");
  message.type = static_cast<MessageType>(tag);
  message.sequence = reader.read_u64();
  message.parameter = reader.read_string();
  message.value = reader.read_f64();
  message.force = reader.read_vec3();
  message.frame_id = reader.read_u64();
  message.sim_time = reader.read_f64();
  return message;
}

std::vector<std::uint8_t> serialize_message(const SteeringMessage& message) {
  BinaryWriter writer;
  write_message(writer, message);
  return writer.take();
}

SteeringMessage deserialize_message(std::span<const std::uint8_t> bytes) {
  BinaryReader reader(bytes);
  SteeringMessage message = read_message(reader);
  SPICE_REQUIRE(reader.at_end(), "trailing bytes after steering message");
  return message;
}

}  // namespace spice::steering
