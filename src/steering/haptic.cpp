#include "steering/haptic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace spice::steering {

HapticDevice::HapticDevice(HapticParams params)
    : params_(params), rng_(spice::Rng::stream(params.seed, 0x686170 /*"hap"*/)) {
  SPICE_REQUIRE(params_.stiffness > 0.0, "haptic stiffness must be positive");
  SPICE_REQUIRE(params_.max_force > 0.0, "haptic force limit must be positive");
}

std::optional<Vec3> HapticDevice::update(const FrameView& view) {
  const double target = params_.target_z + rng_.gaussian(0.0, params_.tremor_stddev);
  double fz = params_.stiffness * (target - view.steered_com_z);
  fz = std::clamp(fz, -params_.max_force, params_.max_force);
  force_log_.add(std::abs(fz));
  if (std::abs(fz) < 1e-6) return std::nullopt;
  return Vec3{0.0, 0.0, fz};
}

double HapticDevice::suggested_spring_pn() const {
  // Heuristic used by the pipeline's interactive phase: the SMD spring
  // should hold the selection against force fluctuations of the felt
  // magnitude over ~1 Å, i.e. κ ≈ mean|F| / 1 Å, expressed in pN/Å.
  const double kappa_internal = std::max(force_log_.mean(), 0.1);
  return spice::units::spring_to_pn_per_angstrom(kappa_internal);
}

VisualizerPolicy HapticDevice::as_policy() {
  return [this](const FrameView& view) { return update(view); };
}

}  // namespace spice::steering
