#pragma once
// Steering protocol messages — the message vocabulary of the RealityGrid
// steering architecture (paper Fig. 2a): components "communicate by
// exchanging messages through intermediate grid services", and the
// visualizer can send messages directly to the simulation (the dotted
// arrows), which is "used extensively for interactive simulations".

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/vec3.hpp"

namespace spice {
class BinaryWriter;
class BinaryReader;
}  // namespace spice

namespace spice::steering {

enum class MessageType {
  Pause,
  Resume,
  Stop,
  SetParameter,   ///< name/value steerable-parameter update
  ApplyForce,     ///< steering force on the simulation's steered selection
  TakeCheckpoint, ///< snapshot current state under `label`
  CloneRequest,   ///< spawn an independent copy from checkpoint `label`
  Frame,          ///< simulation → visualizer data frame
  FrameAck,       ///< visualizer → simulation flow-control ack
};

struct SteeringMessage {
  MessageType type = MessageType::Pause;
  std::uint64_t sequence = 0;   ///< sender-assigned, for ordering/acks
  std::string parameter;        ///< SetParameter name / checkpoint label
  double value = 0.0;           ///< SetParameter value
  Vec3 force;                   ///< ApplyForce payload
  std::uint64_t frame_id = 0;   ///< Frame / FrameAck
  double sim_time = 0.0;        ///< simulation time of a Frame, ps

  [[nodiscard]] static SteeringMessage pause();
  [[nodiscard]] static SteeringMessage resume();
  [[nodiscard]] static SteeringMessage stop();
  [[nodiscard]] static SteeringMessage set_parameter(const std::string& name, double value);
  [[nodiscard]] static SteeringMessage apply_force(const Vec3& force);
  [[nodiscard]] static SteeringMessage take_checkpoint(const std::string& label);
  [[nodiscard]] static SteeringMessage clone_request(const std::string& label);
};

/// Approximate on-wire size of a message in bytes (control messages are
/// tiny; Frame messages carry the coordinate payload and their size is
/// supplied by the simulation).
[[nodiscard]] double control_message_bytes();

// --- serialization ---------------------------------------------------------
// The one canonical wire encoding of a SteeringMessage (the session-log
// entry layout): type u8, sequence u64, parameter string, value f64,
// force vec3, frame_id u64, sim_time f64. write/read compose into larger
// records (SessionLog uses them); serialize/deserialize round-trip one
// standalone message. read_message validates the type tag's enum range.

void write_message(BinaryWriter& writer, const SteeringMessage& message);
[[nodiscard]] SteeringMessage read_message(BinaryReader& reader);
[[nodiscard]] std::vector<std::uint8_t> serialize_message(const SteeringMessage& message);
[[nodiscard]] SteeringMessage deserialize_message(std::span<const std::uint8_t> bytes);

}  // namespace spice::steering
