#pragma once
// Grid-enablement of the MD engine: the steering client API.
//
// The paper (§V-B) stresses that NAMD was grid-enabled "by interfacing the
// application codes to suitable grid middleware through well defined
// user-level APIs ... without changing the programming model and with
// minimal changes to the code". SteerableSimulation is that client-side
// interface for our engine: it owns an Engine, exposes monitored and
// steerable parameters, applies steering messages at step boundaries, and
// implements the checkpoint/clone facility the paper uses "for
// verification and validation tests without perturbing the original
// simulation".

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "md/engine.hpp"
#include "smd/pulling.hpp"
#include "steering/messages.hpp"

namespace spice::steering {

class SteerableSimulation {
 public:
  /// Wrap an engine. `steered_atoms` is the selection steering forces act
  /// on (the paper steers the DNA's C3'-atom equivalent).
  SteerableSimulation(spice::md::Engine engine, std::vector<std::uint32_t> steered_atoms);

  // --- running --------------------------------------------------------
  /// Advance up to `steps` MD steps, honouring pause/stop; messages queued
  /// via deliver() are applied at the next step boundary. Returns steps
  /// actually taken.
  std::size_t run(std::size_t steps);

  /// Queue a steering message (takes effect at the next step boundary).
  void deliver(const SteeringMessage& message);

  [[nodiscard]] bool paused() const { return paused_; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  // --- monitored parameters (read-only telemetry) ----------------------
  /// time_ps, step, temperature_K, potential_kcal, steered COM z, …
  [[nodiscard]] std::map<std::string, double> monitored_parameters();

  /// z of the steered selection's COM (cheap; no energy recomputation).
  [[nodiscard]] double steered_com_z() const;

  /// Publish an extra read-only monitor evaluated on every
  /// monitored_parameters() call — how analysis-side diagnostics (the JE
  /// convergence tracker's ΔF / σ_jack / ESS) reach the steering client
  /// without the simulation layer depending on fe. Re-publishing a name
  /// replaces its provider.
  void publish_monitor(const std::string& name, std::function<double()> provider);

  // --- steerable parameters --------------------------------------------
  /// Register a named steerable scalar with a setter applied on
  /// SetParameter messages.
  void register_steerable(const std::string& name, std::function<void(double)> setter);
  [[nodiscard]] std::vector<std::string> steerable_names() const;

  // --- checkpoint / clone ----------------------------------------------
  /// Labelled checkpoints held by the simulation.
  void take_checkpoint(const std::string& label);
  [[nodiscard]] bool has_checkpoint(const std::string& label) const;
  void restore_checkpoint(const std::string& label);
  /// Spawn an independent simulation from a checkpoint; the clone gets its
  /// own stochastic stream (`clone_seed`) so it explores independently.
  [[nodiscard]] SteerableSimulation clone_from(const std::string& label,
                                               std::uint64_t clone_seed) const;

  [[nodiscard]] spice::md::Engine& engine() { return engine_; }
  [[nodiscard]] const spice::md::Engine& engine() const { return engine_; }
  [[nodiscard]] std::uint64_t messages_applied() const { return messages_applied_; }

 private:
  void apply(const SteeringMessage& message);

  spice::md::Engine engine_;
  std::vector<std::uint32_t> steered_atoms_;
  std::shared_ptr<spice::smd::ConstantForcePull> steering_force_;
  std::vector<SteeringMessage> inbox_;
  std::map<std::string, std::function<void(double)>> steerables_;
  std::map<std::string, std::function<double()>> monitors_;
  std::map<std::string, spice::md::Checkpoint> checkpoints_;
  bool paused_ = false;
  bool stopped_ = false;
  std::uint64_t messages_applied_ = 0;
};

}  // namespace spice::steering
