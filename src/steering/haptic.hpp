#pragma once
// Haptic device model.
//
// The paper uses "haptic devices within the framework for the first time
// as if they were just additional computing resources" (§II) — during the
// interactive phase they give "an estimate of force values as well as ...
// suitable constraints to place" (§III). The model: the operator holds a
// stylus coupled to the steered selection; the device runs a local 1 kHz
// control loop that renders the (delayed) simulation force to the hand and
// emits force commands toward a hand-target position. Device output is the
// VisualizerPolicy the ImdSession consumes, plus a force-magnitude log
// that the SPICE pipeline uses to bracket κ (the "estimate of force
// values" the paper gets from this phase).

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/statistics.hpp"
#include "common/vec3.hpp"
#include "steering/imd.hpp"

namespace spice::steering {

struct HapticParams {
  double stiffness = 2.0;        ///< hand-spring stiffness, kcal/mol/Å²
  double max_force = 60.0;       ///< device force saturation, kcal/mol/Å
  double target_z = -20.0;       ///< where the operator tries to move the COM
  double tremor_stddev = 0.3;    ///< human hand noise on the target, Å
  std::uint64_t seed = 7;
};

/// Stateful haptic controller; produces a steering force per frame and
/// records the forces "felt" so the interactive phase can report a force
/// scale for parameter bracketing.
class HapticDevice {
 public:
  explicit HapticDevice(HapticParams params);

  /// Per-frame controller: force toward the target, saturated at the
  /// device limit, with hand tremor.
  [[nodiscard]] std::optional<Vec3> update(const FrameView& view);

  /// Statistics of the commanded force magnitudes (kcal/mol/Å).
  [[nodiscard]] const spice::RunningStats& force_log() const { return force_log_; }

  /// Suggested SMD spring scale from the interactive session (paper §III:
  /// the haptic phase "helps in choosing the initial range of
  /// parameters"): stiff enough to dominate the felt force gradient.
  [[nodiscard]] double suggested_spring_pn() const;

  /// Bind as a visualizer policy.
  [[nodiscard]] VisualizerPolicy as_policy();

 private:
  HapticParams params_;
  spice::Rng rng_;
  spice::RunningStats force_log_;
};

}  // namespace spice::steering
