#pragma once
// Interactive molecular dynamics (IMD) session over a simulated network.
//
// Models the bidirectional coupling of §II–III: the simulation streams
// coordinate frames to the visualizer; the visualizer renders, acks each
// frame (flow control), and sends steering commands back. The simulation
// keeps at most `window` unacked frames in flight — when the window is
// full it STALLS, which is precisely the failure mode the paper worries
// about: "Unreliable communication leads not only to a possible loss of
// interactivity, but equally seriously, a significant slowdown of the
// simulation as it stalls waiting for data from the visualization."
//
// The session advances a virtual wall clock (seconds): each MD step costs
// `seconds_per_step` (from the performance model of the 300k-atom system
// on N processors); network delays come from spice::net::Network, so QoS
// (latency / jitter / loss, lightpath vs internet) directly shapes the
// achieved simulation rate measured by the E7 bench.
//
// Optionally a real md engine (via SteerableSimulation) executes the same
// steps so steering commands genuinely alter the trajectory.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/vec3.hpp"
#include "net/network.hpp"
#include "steering/steerable.hpp"

namespace spice::steering {

struct ImdConfig {
  std::size_t total_steps = 2000;
  std::size_t steps_per_frame = 10;
  std::size_t window = 4;            ///< max in-flight unacked frames
  double seconds_per_step = 0.0864;  ///< 300k atoms on 128 procs (cost model)
  double frame_bytes = 3.6e6;        ///< 300k atoms × 12 bytes
  double render_seconds = 0.02;      ///< visualizer per-frame processing
  /// A window slot whose frame is never acked (lost frame, lost ack, or a
  /// dead visualizer) frees `ack_timeout_s` after the frame was sent. The
  /// simulation pays that full timeout as stall — a crashed visualizer
  /// throttles the single-client session to one frame per timeout, which
  /// is exactly why spice::hub decouples the producer from its consumers.
  double ack_timeout_s = 10.0;
  spice::net::Transport transport = spice::net::Transport::Tcp;
};

/// Information handed to the visualizer policy for each rendered frame.
struct FrameView {
  std::uint64_t frame_id = 0;
  double sim_time_ps = 0.0;
  double wall_seconds = 0.0;
  double steered_com_z = 0.0;  ///< 0 when no live engine is attached
};

/// The scientist-at-the-visualizer: returns a steering force to send back
/// (or nullopt). Replaces the human in the loop (DESIGN.md §2).
using VisualizerPolicy = std::function<std::optional<Vec3>(const FrameView&)>;

struct ImdMetrics {
  std::size_t steps_completed = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;       ///< undeliverable after retries
  std::uint64_t frames_timed_out = 0;  ///< window slots freed by ack timeout
  std::uint64_t commands_sent = 0;
  std::uint64_t commands_applied = 0;
  double wall_seconds = 0.0;           ///< total session wall-clock
  double stall_seconds = 0.0;          ///< time the simulation sat blocked
  double ideal_seconds = 0.0;          ///< compute-only time (no network)
  double mean_frame_rtt = 0.0;         ///< emit → ack, seconds

  /// Fraction of wall time lost to stalls.
  [[nodiscard]] double stall_fraction() const {
    return wall_seconds > 0.0 ? stall_seconds / wall_seconds : 0.0;
  }
  /// Achieved step rate / ideal step rate (1.0 = no slowdown).
  [[nodiscard]] double efficiency() const {
    return wall_seconds > 0.0 ? ideal_seconds / wall_seconds : 0.0;
  }
};

class ImdSession {
 public:
  /// `simulation` may be null: the session then runs as a pure timing
  /// model (used by the QoS sweeps, where only throughput matters).
  ImdSession(spice::net::Network& network, spice::net::HostId sim_host,
             spice::net::HostId viz_host, ImdConfig config,
             SteerableSimulation* simulation = nullptr);

  void set_visualizer_policy(VisualizerPolicy policy) { policy_ = std::move(policy); }

  /// Run the whole session; returns the metrics.
  ImdMetrics run();

 private:
  spice::net::Network& network_;
  spice::net::HostId sim_host_;
  spice::net::HostId viz_host_;
  ImdConfig config_;
  SteerableSimulation* simulation_;
  VisualizerPolicy policy_;
};

}  // namespace spice::steering
