#include "steering/imd.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"
#include "md/observables.hpp"
#include "obs/obs.hpp"

namespace spice::steering {

ImdSession::ImdSession(spice::net::Network& network, spice::net::HostId sim_host,
                       spice::net::HostId viz_host, ImdConfig config,
                       SteerableSimulation* simulation)
    : network_(network),
      sim_host_(sim_host),
      viz_host_(viz_host),
      config_(config),
      simulation_(simulation) {
  SPICE_REQUIRE(config_.total_steps > 0, "IMD session needs steps");
  SPICE_REQUIRE(config_.steps_per_frame > 0, "steps_per_frame must be positive");
  SPICE_REQUIRE(config_.window > 0, "flow-control window must be positive");
  SPICE_REQUIRE(config_.seconds_per_step > 0.0, "seconds_per_step must be positive");
  SPICE_REQUIRE(config_.ack_timeout_s > 0.0, "ack_timeout_s must be positive");
}

ImdMetrics ImdSession::run() {
  SPICE_TRACE_SCOPE_CAT("steering.imd_session", "steering");
  static obs::Counter& ticks = obs::metrics().counter("steering.imd.steps");
  static obs::Counter& frames = obs::metrics().counter("steering.imd.frames_sent");
  static obs::Counter& commands = obs::metrics().counter("steering.imd.commands_applied");
  static constexpr double kRttBounds[] = {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0};
  static obs::Histogram& rtt_hist =
      obs::metrics().histogram("steering.imd.frame_rtt_s", kRttBounds);
  static obs::Counter& timed_out = obs::metrics().counter("steering.imd.frames_timed_out");
  obs::Gauge& stall_gauge = obs::metrics().gauge("steering.imd.stall_seconds");
  ImdMetrics metrics;
  double wall = 0.0;
  double viz_free = 0.0;  // when the visualizer finishes its current frame

  struct InFlight {
    bool acked;
    double ack_time;
    double sent_at;
  };
  std::deque<InFlight> inflight;

  struct PendingCommand {
    double arrival;
    Vec3 force;
  };
  std::vector<PendingCommand> pending;

  std::uint64_t frame_id = 0;
  double rtt_sum = 0.0;
  std::uint64_t rtt_count = 0;

  for (std::size_t step = 0; step < config_.total_steps; ++step) {
    // Apply steering commands that have arrived by now (step boundary).
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->arrival <= wall) {
        if (simulation_ != nullptr) {
          simulation_->deliver(SteeringMessage::apply_force(it->force));
        }
        ++metrics.commands_applied;
        commands.add(1);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }

    if (simulation_ != nullptr) {
      const std::size_t taken = simulation_->run(1);
      SPICE_ENSURE(taken == 1, "steered engine refused to step");
    }
    wall += config_.seconds_per_step;
    ++metrics.steps_completed;
    ticks.add(1);

    if ((step + 1) % config_.steps_per_frame != 0) continue;

    // Flow control: block until a window slot frees — when the ack comes
    // in, or at the ack timeout for a frame that will never be acked (the
    // frame or its ack died in the network, or the visualizer is dead).
    // Without the timeout an unacked slot would free instantly, silently
    // exempting the worst clients from flow control.
    if (inflight.size() >= config_.window) {
      const InFlight oldest = inflight.front();
      inflight.pop_front();
      const double deadline = oldest.sent_at + config_.ack_timeout_s;
      const double release = oldest.acked ? std::min(oldest.ack_time, deadline) : deadline;
      if (!oldest.acked || oldest.ack_time > deadline) {
        ++metrics.frames_timed_out;
        timed_out.add(1);
      }
      if (release > wall) {
        metrics.stall_seconds += release - wall;
        wall = release;
      }
    }

    // Emit the frame.
    ++metrics.frames_sent;
    frames.add(1);
    const auto frame = network_.send(wall, sim_host_, viz_host_, config_.frame_bytes,
                                     config_.transport);
    if (!frame.delivered) {
      ++metrics.frames_lost;
      inflight.push_back(InFlight{false, 0.0, wall});
      ++frame_id;
      continue;
    }
    ++metrics.frames_delivered;

    const double render_done = std::max(frame.deliver_at, viz_free) + config_.render_seconds;
    viz_free = render_done;

    FrameView view;
    view.frame_id = frame_id;
    view.wall_seconds = wall;
    if (simulation_ != nullptr) {
      view.sim_time_ps = simulation_->engine().time();
      view.steered_com_z = simulation_->steered_com_z();
    }
    if (policy_) {
      if (const auto force = policy_(view)) {
        ++metrics.commands_sent;
        const auto cmd = network_.send(render_done, viz_host_, sim_host_,
                                       control_message_bytes(), config_.transport);
        if (cmd.delivered) pending.push_back(PendingCommand{cmd.deliver_at, *force});
      }
    }

    const auto ack =
        network_.send(render_done, viz_host_, sim_host_, control_message_bytes(),
                      config_.transport);
    if (ack.delivered) {
      inflight.push_back(InFlight{true, ack.deliver_at, wall});
      rtt_sum += ack.deliver_at - wall;
      ++rtt_count;
      rtt_hist.record(ack.deliver_at - wall);
    } else {
      inflight.push_back(InFlight{false, 0.0, wall});
    }
    ++frame_id;
  }

  metrics.wall_seconds = wall;
  stall_gauge.add(metrics.stall_seconds);
  metrics.ideal_seconds =
      static_cast<double>(config_.total_steps) * config_.seconds_per_step;
  metrics.mean_frame_rtt = rtt_count > 0 ? rtt_sum / static_cast<double>(rtt_count) : 0.0;
  return metrics;
}

}  // namespace spice::steering
