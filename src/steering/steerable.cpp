#include "steering/steerable.hpp"

#include "common/error.hpp"
#include "md/observables.hpp"

namespace spice::steering {

SteerableSimulation::SteerableSimulation(spice::md::Engine engine,
                                         std::vector<std::uint32_t> steered_atoms)
    : engine_(std::move(engine)), steered_atoms_(std::move(steered_atoms)) {
  SPICE_REQUIRE(!steered_atoms_.empty(), "steerable simulation needs a steered selection");
  steering_force_ =
      std::make_shared<spice::smd::ConstantForcePull>(steered_atoms_, Vec3{});
  engine_.add_contribution(steering_force_);
}

void SteerableSimulation::deliver(const SteeringMessage& message) {
  inbox_.push_back(message);
}

void SteerableSimulation::apply(const SteeringMessage& message) {
  ++messages_applied_;
  switch (message.type) {
    case MessageType::Pause:
      paused_ = true;
      break;
    case MessageType::Resume:
      paused_ = false;
      break;
    case MessageType::Stop:
      stopped_ = true;
      break;
    case MessageType::SetParameter: {
      const auto it = steerables_.find(message.parameter);
      SPICE_REQUIRE(it != steerables_.end(),
                    "unknown steerable parameter: " + message.parameter);
      it->second(message.value);
      break;
    }
    case MessageType::ApplyForce:
      steering_force_->set_force(message.force);
      break;
    case MessageType::TakeCheckpoint:
      take_checkpoint(message.parameter);
      break;
    case MessageType::CloneRequest:
      // Clones are spawned by the framework via clone_from(); receiving
      // the message only validates the label exists.
      SPICE_REQUIRE(has_checkpoint(message.parameter),
                    "clone request for unknown checkpoint: " + message.parameter);
      break;
    case MessageType::Frame:
    case MessageType::FrameAck:
      break;  // data-plane messages; not applied to the engine
  }
}

std::size_t SteerableSimulation::run(std::size_t steps) {
  std::size_t taken = 0;
  for (std::size_t s = 0; s < steps; ++s) {
    // Step boundary: drain the inbox.
    for (const auto& m : inbox_) apply(m);
    inbox_.clear();
    if (stopped_ || paused_) break;
    engine_.step();
    ++taken;
  }
  return taken;
}

std::map<std::string, double> SteerableSimulation::monitored_parameters() {
  std::map<std::string, double> out;
  out["time_ps"] = engine_.time();
  out["step"] = static_cast<double>(engine_.step_count());
  out["temperature_K"] = engine_.instantaneous_temperature();
  out["kinetic_kcal"] = engine_.kinetic_energy();
  const auto& energies = engine_.compute_energies();
  out["potential_kcal"] = energies.total();
  // Per-contribution external energies (pore vs SMD spring vs steering
  // force are distinguishable on the monitor).
  for (const auto& term : energies.external_terms) {
    out["energy_" + term.name + "_kcal"] = term.energy;
  }
  const Vec3 com =
      spice::md::center_of_mass(engine_.positions(), engine_.topology(), steered_atoms_);
  out["steered_com_z"] = com.z;
  for (const auto& [name, provider] : monitors_) out[name] = provider();
  return out;
}

void SteerableSimulation::publish_monitor(const std::string& name,
                                          std::function<double()> provider) {
  SPICE_REQUIRE(provider != nullptr, "monitor provider must be callable");
  monitors_[name] = std::move(provider);
}

double SteerableSimulation::steered_com_z() const {
  return spice::md::center_of_mass(engine_.positions(), engine_.topology(), steered_atoms_).z;
}

void SteerableSimulation::register_steerable(const std::string& name,
                                             std::function<void(double)> setter) {
  SPICE_REQUIRE(setter != nullptr, "steerable setter must be callable");
  steerables_[name] = std::move(setter);
}

std::vector<std::string> SteerableSimulation::steerable_names() const {
  std::vector<std::string> names;
  names.reserve(steerables_.size());
  for (const auto& [name, setter] : steerables_) names.push_back(name);
  return names;
}

void SteerableSimulation::take_checkpoint(const std::string& label) {
  SPICE_REQUIRE(!label.empty(), "checkpoint needs a label");
  checkpoints_[label] = engine_.checkpoint();
}

bool SteerableSimulation::has_checkpoint(const std::string& label) const {
  return checkpoints_.contains(label);
}

void SteerableSimulation::restore_checkpoint(const std::string& label) {
  const auto it = checkpoints_.find(label);
  SPICE_REQUIRE(it != checkpoints_.end(), "unknown checkpoint: " + label);
  engine_.restore(it->second);
}

SteerableSimulation SteerableSimulation::clone_from(const std::string& label,
                                                    std::uint64_t clone_seed) const {
  const auto it = checkpoints_.find(label);
  SPICE_REQUIRE(it != checkpoints_.end(), "unknown checkpoint: " + label);
  spice::md::Engine cloned = engine_.clone(clone_seed);
  // The clone shares contribution objects with the original; detach the
  // original's steering force so the wrapper can install its own (shared
  // stateless potentials such as the pore stay shared by design).
  cloned.remove_contribution(steering_force_.get());
  cloned.restore(it->second);
  // restore() brings back the snapshot's seed (for exact resume); the
  // clone must instead explore with its own stream.
  cloned.set_seed(clone_seed);
  SteerableSimulation copy(std::move(cloned), steered_atoms_);
  return copy;
}

}  // namespace spice::steering
