# Empty dependencies file for nanopore_trace.
# This may be replaced when dependencies are built.
