file(REMOVE_RECURSE
  "CMakeFiles/nanopore_trace.dir/nanopore_trace.cpp.o"
  "CMakeFiles/nanopore_trace.dir/nanopore_trace.cpp.o.d"
  "nanopore_trace"
  "nanopore_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanopore_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
