file(REMOVE_RECURSE
  "CMakeFiles/parameter_scan.dir/parameter_scan.cpp.o"
  "CMakeFiles/parameter_scan.dir/parameter_scan.cpp.o.d"
  "parameter_scan"
  "parameter_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
