# Empty dependencies file for parameter_scan.
# This may be replaced when dependencies are built.
