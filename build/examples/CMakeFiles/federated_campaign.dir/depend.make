# Empty dependencies file for federated_campaign.
# This may be replaced when dependencies are built.
