file(REMOVE_RECURSE
  "CMakeFiles/federated_campaign.dir/federated_campaign.cpp.o"
  "CMakeFiles/federated_campaign.dir/federated_campaign.cpp.o.d"
  "federated_campaign"
  "federated_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
