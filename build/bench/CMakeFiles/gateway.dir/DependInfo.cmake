
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/gateway.cpp" "bench/CMakeFiles/gateway.dir/gateway.cpp.o" "gcc" "bench/CMakeFiles/gateway.dir/gateway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/spice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/steering/CMakeFiles/spice_steering.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/spice_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spice_net.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/spice_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/fe/CMakeFiles/spice_fe.dir/DependInfo.cmake"
  "/root/repo/build/src/smd/CMakeFiles/spice_smd.dir/DependInfo.cmake"
  "/root/repo/build/src/pore/CMakeFiles/spice_pore.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/spice_md.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spice_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
