file(REMOVE_RECURSE
  "CMakeFiles/ti_extension.dir/ti_extension.cpp.o"
  "CMakeFiles/ti_extension.dir/ti_extension.cpp.o.d"
  "ti_extension"
  "ti_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ti_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
