# Empty compiler generated dependencies file for ti_extension.
# This may be replaced when dependencies are built.
