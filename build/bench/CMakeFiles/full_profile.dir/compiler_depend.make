# Empty compiler generated dependencies file for full_profile.
# This may be replaced when dependencies are built.
