file(REMOVE_RECURSE
  "CMakeFiles/full_profile.dir/full_profile.cpp.o"
  "CMakeFiles/full_profile.dir/full_profile.cpp.o.d"
  "full_profile"
  "full_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
