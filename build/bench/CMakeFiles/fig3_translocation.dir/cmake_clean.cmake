file(REMOVE_RECURSE
  "CMakeFiles/fig3_translocation.dir/fig3_translocation.cpp.o"
  "CMakeFiles/fig3_translocation.dir/fig3_translocation.cpp.o.d"
  "fig3_translocation"
  "fig3_translocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_translocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
