# Empty dependencies file for fig3_translocation.
# This may be replaced when dependencies are built.
