file(REMOVE_RECURSE
  "CMakeFiles/ablation_work_source.dir/ablation_work_source.cpp.o"
  "CMakeFiles/ablation_work_source.dir/ablation_work_source.cpp.o.d"
  "ablation_work_source"
  "ablation_work_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_work_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
