# Empty dependencies file for ablation_work_source.
# This may be replaced when dependencies are built.
