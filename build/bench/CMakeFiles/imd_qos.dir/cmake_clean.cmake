file(REMOVE_RECURSE
  "CMakeFiles/imd_qos.dir/imd_qos.cpp.o"
  "CMakeFiles/imd_qos.dir/imd_qos.cpp.o.d"
  "imd_qos"
  "imd_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imd_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
