# Empty compiler generated dependencies file for imd_qos.
# This may be replaced when dependencies are built.
