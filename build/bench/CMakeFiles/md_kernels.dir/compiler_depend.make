# Empty compiler generated dependencies file for md_kernels.
# This may be replaced when dependencies are built.
