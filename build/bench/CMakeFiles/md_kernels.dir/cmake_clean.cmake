file(REMOVE_RECURSE
  "CMakeFiles/md_kernels.dir/md_kernels.cpp.o"
  "CMakeFiles/md_kernels.dir/md_kernels.cpp.o.d"
  "md_kernels"
  "md_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
