# Empty compiler generated dependencies file for coscheduling.
# This may be replaced when dependencies are built.
