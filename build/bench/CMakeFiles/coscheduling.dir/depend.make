# Empty dependencies file for coscheduling.
# This may be replaced when dependencies are built.
