file(REMOVE_RECURSE
  "CMakeFiles/coscheduling.dir/coscheduling.cpp.o"
  "CMakeFiles/coscheduling.dir/coscheduling.cpp.o.d"
  "coscheduling"
  "coscheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coscheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
