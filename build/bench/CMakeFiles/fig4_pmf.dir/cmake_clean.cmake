file(REMOVE_RECURSE
  "CMakeFiles/fig4_pmf.dir/fig4_pmf.cpp.o"
  "CMakeFiles/fig4_pmf.dir/fig4_pmf.cpp.o.d"
  "fig4_pmf"
  "fig4_pmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
