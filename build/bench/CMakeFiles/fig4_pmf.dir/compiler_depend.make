# Empty compiler generated dependencies file for fig4_pmf.
# This may be replaced when dependencies are built.
