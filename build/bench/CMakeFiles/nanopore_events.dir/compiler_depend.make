# Empty compiler generated dependencies file for nanopore_events.
# This may be replaced when dependencies are built.
