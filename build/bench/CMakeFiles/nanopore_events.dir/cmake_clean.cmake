file(REMOVE_RECURSE
  "CMakeFiles/nanopore_events.dir/nanopore_events.cpp.o"
  "CMakeFiles/nanopore_events.dir/nanopore_events.cpp.o.d"
  "nanopore_events"
  "nanopore_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanopore_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
