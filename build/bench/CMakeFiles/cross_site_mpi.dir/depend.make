# Empty dependencies file for cross_site_mpi.
# This may be replaced when dependencies are built.
