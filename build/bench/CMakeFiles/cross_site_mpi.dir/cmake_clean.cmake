file(REMOVE_RECURSE
  "CMakeFiles/cross_site_mpi.dir/cross_site_mpi.cpp.o"
  "CMakeFiles/cross_site_mpi.dir/cross_site_mpi.cpp.o.d"
  "cross_site_mpi"
  "cross_site_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_site_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
