file(REMOVE_RECURSE
  "CMakeFiles/spice_smd.dir/position_restraint.cpp.o"
  "CMakeFiles/spice_smd.dir/position_restraint.cpp.o.d"
  "CMakeFiles/spice_smd.dir/pulling.cpp.o"
  "CMakeFiles/spice_smd.dir/pulling.cpp.o.d"
  "CMakeFiles/spice_smd.dir/restraint.cpp.o"
  "CMakeFiles/spice_smd.dir/restraint.cpp.o.d"
  "libspice_smd.a"
  "libspice_smd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_smd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
