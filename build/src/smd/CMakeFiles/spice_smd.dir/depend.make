# Empty dependencies file for spice_smd.
# This may be replaced when dependencies are built.
