file(REMOVE_RECURSE
  "libspice_smd.a"
)
