# Empty compiler generated dependencies file for spice_core.
# This may be replaced when dependencies are built.
