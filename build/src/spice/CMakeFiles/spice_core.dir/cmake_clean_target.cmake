file(REMOVE_RECURSE
  "libspice_core.a"
)
