file(REMOVE_RECURSE
  "CMakeFiles/spice_core.dir/campaign.cpp.o"
  "CMakeFiles/spice_core.dir/campaign.cpp.o.d"
  "CMakeFiles/spice_core.dir/cost_model.cpp.o"
  "CMakeFiles/spice_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/spice_core.dir/interactive_session.cpp.o"
  "CMakeFiles/spice_core.dir/interactive_session.cpp.o.d"
  "CMakeFiles/spice_core.dir/optimizer.cpp.o"
  "CMakeFiles/spice_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/spice_core.dir/pipeline.cpp.o"
  "CMakeFiles/spice_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/spice_core.dir/production.cpp.o"
  "CMakeFiles/spice_core.dir/production.cpp.o.d"
  "CMakeFiles/spice_core.dir/report.cpp.o"
  "CMakeFiles/spice_core.dir/report.cpp.o.d"
  "libspice_core.a"
  "libspice_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
