file(REMOVE_RECURSE
  "libspice_pore.a"
)
