
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pore/current.cpp" "src/pore/CMakeFiles/spice_pore.dir/current.cpp.o" "gcc" "src/pore/CMakeFiles/spice_pore.dir/current.cpp.o.d"
  "/root/repo/src/pore/dna.cpp" "src/pore/CMakeFiles/spice_pore.dir/dna.cpp.o" "gcc" "src/pore/CMakeFiles/spice_pore.dir/dna.cpp.o.d"
  "/root/repo/src/pore/pore_potential.cpp" "src/pore/CMakeFiles/spice_pore.dir/pore_potential.cpp.o" "gcc" "src/pore/CMakeFiles/spice_pore.dir/pore_potential.cpp.o.d"
  "/root/repo/src/pore/profile.cpp" "src/pore/CMakeFiles/spice_pore.dir/profile.cpp.o" "gcc" "src/pore/CMakeFiles/spice_pore.dir/profile.cpp.o.d"
  "/root/repo/src/pore/system.cpp" "src/pore/CMakeFiles/spice_pore.dir/system.cpp.o" "gcc" "src/pore/CMakeFiles/spice_pore.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/spice_md.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spice_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
