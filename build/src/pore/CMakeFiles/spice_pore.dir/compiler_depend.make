# Empty compiler generated dependencies file for spice_pore.
# This may be replaced when dependencies are built.
