file(REMOVE_RECURSE
  "CMakeFiles/spice_pore.dir/current.cpp.o"
  "CMakeFiles/spice_pore.dir/current.cpp.o.d"
  "CMakeFiles/spice_pore.dir/dna.cpp.o"
  "CMakeFiles/spice_pore.dir/dna.cpp.o.d"
  "CMakeFiles/spice_pore.dir/pore_potential.cpp.o"
  "CMakeFiles/spice_pore.dir/pore_potential.cpp.o.d"
  "CMakeFiles/spice_pore.dir/profile.cpp.o"
  "CMakeFiles/spice_pore.dir/profile.cpp.o.d"
  "CMakeFiles/spice_pore.dir/system.cpp.o"
  "CMakeFiles/spice_pore.dir/system.cpp.o.d"
  "libspice_pore.a"
  "libspice_pore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_pore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
