file(REMOVE_RECURSE
  "CMakeFiles/spice_common.dir/log.cpp.o"
  "CMakeFiles/spice_common.dir/log.cpp.o.d"
  "CMakeFiles/spice_common.dir/rng.cpp.o"
  "CMakeFiles/spice_common.dir/rng.cpp.o.d"
  "CMakeFiles/spice_common.dir/serialize.cpp.o"
  "CMakeFiles/spice_common.dir/serialize.cpp.o.d"
  "CMakeFiles/spice_common.dir/statistics.cpp.o"
  "CMakeFiles/spice_common.dir/statistics.cpp.o.d"
  "CMakeFiles/spice_common.dir/thread_pool.cpp.o"
  "CMakeFiles/spice_common.dir/thread_pool.cpp.o.d"
  "libspice_common.a"
  "libspice_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
