# Empty compiler generated dependencies file for spice_common.
# This may be replaced when dependencies are built.
