file(REMOVE_RECURSE
  "libspice_common.a"
)
