# Empty dependencies file for spice_viz.
# This may be replaced when dependencies are built.
