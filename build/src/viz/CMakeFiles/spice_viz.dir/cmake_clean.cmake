file(REMOVE_RECURSE
  "CMakeFiles/spice_viz.dir/ascii_render.cpp.o"
  "CMakeFiles/spice_viz.dir/ascii_render.cpp.o.d"
  "CMakeFiles/spice_viz.dir/ppm.cpp.o"
  "CMakeFiles/spice_viz.dir/ppm.cpp.o.d"
  "CMakeFiles/spice_viz.dir/series_writer.cpp.o"
  "CMakeFiles/spice_viz.dir/series_writer.cpp.o.d"
  "CMakeFiles/spice_viz.dir/xyz_writer.cpp.o"
  "CMakeFiles/spice_viz.dir/xyz_writer.cpp.o.d"
  "libspice_viz.a"
  "libspice_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
