
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/ascii_render.cpp" "src/viz/CMakeFiles/spice_viz.dir/ascii_render.cpp.o" "gcc" "src/viz/CMakeFiles/spice_viz.dir/ascii_render.cpp.o.d"
  "/root/repo/src/viz/ppm.cpp" "src/viz/CMakeFiles/spice_viz.dir/ppm.cpp.o" "gcc" "src/viz/CMakeFiles/spice_viz.dir/ppm.cpp.o.d"
  "/root/repo/src/viz/series_writer.cpp" "src/viz/CMakeFiles/spice_viz.dir/series_writer.cpp.o" "gcc" "src/viz/CMakeFiles/spice_viz.dir/series_writer.cpp.o.d"
  "/root/repo/src/viz/xyz_writer.cpp" "src/viz/CMakeFiles/spice_viz.dir/xyz_writer.cpp.o" "gcc" "src/viz/CMakeFiles/spice_viz.dir/xyz_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pore/CMakeFiles/spice_pore.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/spice_md.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spice_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
