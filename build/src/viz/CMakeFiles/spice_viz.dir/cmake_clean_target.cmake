file(REMOVE_RECURSE
  "libspice_viz.a"
)
