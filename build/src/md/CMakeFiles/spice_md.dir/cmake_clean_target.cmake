file(REMOVE_RECURSE
  "libspice_md.a"
)
