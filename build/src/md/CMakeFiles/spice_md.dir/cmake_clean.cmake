file(REMOVE_RECURSE
  "CMakeFiles/spice_md.dir/engine.cpp.o"
  "CMakeFiles/spice_md.dir/engine.cpp.o.d"
  "CMakeFiles/spice_md.dir/force_contribution.cpp.o"
  "CMakeFiles/spice_md.dir/force_contribution.cpp.o.d"
  "CMakeFiles/spice_md.dir/forcefield.cpp.o"
  "CMakeFiles/spice_md.dir/forcefield.cpp.o.d"
  "CMakeFiles/spice_md.dir/neighbor_list.cpp.o"
  "CMakeFiles/spice_md.dir/neighbor_list.cpp.o.d"
  "CMakeFiles/spice_md.dir/observables.cpp.o"
  "CMakeFiles/spice_md.dir/observables.cpp.o.d"
  "CMakeFiles/spice_md.dir/topology.cpp.o"
  "CMakeFiles/spice_md.dir/topology.cpp.o.d"
  "libspice_md.a"
  "libspice_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
