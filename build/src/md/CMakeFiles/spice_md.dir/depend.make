# Empty dependencies file for spice_md.
# This may be replaced when dependencies are built.
