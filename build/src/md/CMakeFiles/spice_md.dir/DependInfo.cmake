
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/engine.cpp" "src/md/CMakeFiles/spice_md.dir/engine.cpp.o" "gcc" "src/md/CMakeFiles/spice_md.dir/engine.cpp.o.d"
  "/root/repo/src/md/force_contribution.cpp" "src/md/CMakeFiles/spice_md.dir/force_contribution.cpp.o" "gcc" "src/md/CMakeFiles/spice_md.dir/force_contribution.cpp.o.d"
  "/root/repo/src/md/forcefield.cpp" "src/md/CMakeFiles/spice_md.dir/forcefield.cpp.o" "gcc" "src/md/CMakeFiles/spice_md.dir/forcefield.cpp.o.d"
  "/root/repo/src/md/neighbor_list.cpp" "src/md/CMakeFiles/spice_md.dir/neighbor_list.cpp.o" "gcc" "src/md/CMakeFiles/spice_md.dir/neighbor_list.cpp.o.d"
  "/root/repo/src/md/observables.cpp" "src/md/CMakeFiles/spice_md.dir/observables.cpp.o" "gcc" "src/md/CMakeFiles/spice_md.dir/observables.cpp.o.d"
  "/root/repo/src/md/topology.cpp" "src/md/CMakeFiles/spice_md.dir/topology.cpp.o" "gcc" "src/md/CMakeFiles/spice_md.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spice_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
