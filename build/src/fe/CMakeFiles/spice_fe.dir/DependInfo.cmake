
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fe/bar.cpp" "src/fe/CMakeFiles/spice_fe.dir/bar.cpp.o" "gcc" "src/fe/CMakeFiles/spice_fe.dir/bar.cpp.o.d"
  "/root/repo/src/fe/error_analysis.cpp" "src/fe/CMakeFiles/spice_fe.dir/error_analysis.cpp.o" "gcc" "src/fe/CMakeFiles/spice_fe.dir/error_analysis.cpp.o.d"
  "/root/repo/src/fe/jarzynski.cpp" "src/fe/CMakeFiles/spice_fe.dir/jarzynski.cpp.o" "gcc" "src/fe/CMakeFiles/spice_fe.dir/jarzynski.cpp.o.d"
  "/root/repo/src/fe/pmf.cpp" "src/fe/CMakeFiles/spice_fe.dir/pmf.cpp.o" "gcc" "src/fe/CMakeFiles/spice_fe.dir/pmf.cpp.o.d"
  "/root/repo/src/fe/ti.cpp" "src/fe/CMakeFiles/spice_fe.dir/ti.cpp.o" "gcc" "src/fe/CMakeFiles/spice_fe.dir/ti.cpp.o.d"
  "/root/repo/src/fe/wham.cpp" "src/fe/CMakeFiles/spice_fe.dir/wham.cpp.o" "gcc" "src/fe/CMakeFiles/spice_fe.dir/wham.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smd/CMakeFiles/spice_smd.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/spice_md.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spice_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
