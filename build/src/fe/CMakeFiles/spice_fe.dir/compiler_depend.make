# Empty compiler generated dependencies file for spice_fe.
# This may be replaced when dependencies are built.
