file(REMOVE_RECURSE
  "libspice_fe.a"
)
