file(REMOVE_RECURSE
  "CMakeFiles/spice_fe.dir/bar.cpp.o"
  "CMakeFiles/spice_fe.dir/bar.cpp.o.d"
  "CMakeFiles/spice_fe.dir/error_analysis.cpp.o"
  "CMakeFiles/spice_fe.dir/error_analysis.cpp.o.d"
  "CMakeFiles/spice_fe.dir/jarzynski.cpp.o"
  "CMakeFiles/spice_fe.dir/jarzynski.cpp.o.d"
  "CMakeFiles/spice_fe.dir/pmf.cpp.o"
  "CMakeFiles/spice_fe.dir/pmf.cpp.o.d"
  "CMakeFiles/spice_fe.dir/ti.cpp.o"
  "CMakeFiles/spice_fe.dir/ti.cpp.o.d"
  "CMakeFiles/spice_fe.dir/wham.cpp.o"
  "CMakeFiles/spice_fe.dir/wham.cpp.o.d"
  "libspice_fe.a"
  "libspice_fe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_fe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
