file(REMOVE_RECURSE
  "libspice_grid.a"
)
