
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/coordination.cpp" "src/grid/CMakeFiles/spice_grid.dir/coordination.cpp.o" "gcc" "src/grid/CMakeFiles/spice_grid.dir/coordination.cpp.o.d"
  "/root/repo/src/grid/coscheduling.cpp" "src/grid/CMakeFiles/spice_grid.dir/coscheduling.cpp.o" "gcc" "src/grid/CMakeFiles/spice_grid.dir/coscheduling.cpp.o.d"
  "/root/repo/src/grid/des.cpp" "src/grid/CMakeFiles/spice_grid.dir/des.cpp.o" "gcc" "src/grid/CMakeFiles/spice_grid.dir/des.cpp.o.d"
  "/root/repo/src/grid/federation.cpp" "src/grid/CMakeFiles/spice_grid.dir/federation.cpp.o" "gcc" "src/grid/CMakeFiles/spice_grid.dir/federation.cpp.o.d"
  "/root/repo/src/grid/metrics.cpp" "src/grid/CMakeFiles/spice_grid.dir/metrics.cpp.o" "gcc" "src/grid/CMakeFiles/spice_grid.dir/metrics.cpp.o.d"
  "/root/repo/src/grid/site.cpp" "src/grid/CMakeFiles/spice_grid.dir/site.cpp.o" "gcc" "src/grid/CMakeFiles/spice_grid.dir/site.cpp.o.d"
  "/root/repo/src/grid/workflow.cpp" "src/grid/CMakeFiles/spice_grid.dir/workflow.cpp.o" "gcc" "src/grid/CMakeFiles/spice_grid.dir/workflow.cpp.o.d"
  "/root/repo/src/grid/workload.cpp" "src/grid/CMakeFiles/spice_grid.dir/workload.cpp.o" "gcc" "src/grid/CMakeFiles/spice_grid.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spice_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
