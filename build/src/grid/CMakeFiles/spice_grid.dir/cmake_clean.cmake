file(REMOVE_RECURSE
  "CMakeFiles/spice_grid.dir/coordination.cpp.o"
  "CMakeFiles/spice_grid.dir/coordination.cpp.o.d"
  "CMakeFiles/spice_grid.dir/coscheduling.cpp.o"
  "CMakeFiles/spice_grid.dir/coscheduling.cpp.o.d"
  "CMakeFiles/spice_grid.dir/des.cpp.o"
  "CMakeFiles/spice_grid.dir/des.cpp.o.d"
  "CMakeFiles/spice_grid.dir/federation.cpp.o"
  "CMakeFiles/spice_grid.dir/federation.cpp.o.d"
  "CMakeFiles/spice_grid.dir/metrics.cpp.o"
  "CMakeFiles/spice_grid.dir/metrics.cpp.o.d"
  "CMakeFiles/spice_grid.dir/site.cpp.o"
  "CMakeFiles/spice_grid.dir/site.cpp.o.d"
  "CMakeFiles/spice_grid.dir/workflow.cpp.o"
  "CMakeFiles/spice_grid.dir/workflow.cpp.o.d"
  "CMakeFiles/spice_grid.dir/workload.cpp.o"
  "CMakeFiles/spice_grid.dir/workload.cpp.o.d"
  "libspice_grid.a"
  "libspice_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
