# Empty dependencies file for spice_grid.
# This may be replaced when dependencies are built.
