file(REMOVE_RECURSE
  "libspice_net.a"
)
