# Empty compiler generated dependencies file for spice_net.
# This may be replaced when dependencies are built.
