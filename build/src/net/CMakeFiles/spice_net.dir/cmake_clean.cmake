file(REMOVE_RECURSE
  "CMakeFiles/spice_net.dir/mpi.cpp.o"
  "CMakeFiles/spice_net.dir/mpi.cpp.o.d"
  "CMakeFiles/spice_net.dir/network.cpp.o"
  "CMakeFiles/spice_net.dir/network.cpp.o.d"
  "CMakeFiles/spice_net.dir/qos.cpp.o"
  "CMakeFiles/spice_net.dir/qos.cpp.o.d"
  "libspice_net.a"
  "libspice_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
