
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/steering/haptic.cpp" "src/steering/CMakeFiles/spice_steering.dir/haptic.cpp.o" "gcc" "src/steering/CMakeFiles/spice_steering.dir/haptic.cpp.o.d"
  "/root/repo/src/steering/imd.cpp" "src/steering/CMakeFiles/spice_steering.dir/imd.cpp.o" "gcc" "src/steering/CMakeFiles/spice_steering.dir/imd.cpp.o.d"
  "/root/repo/src/steering/messages.cpp" "src/steering/CMakeFiles/spice_steering.dir/messages.cpp.o" "gcc" "src/steering/CMakeFiles/spice_steering.dir/messages.cpp.o.d"
  "/root/repo/src/steering/registry.cpp" "src/steering/CMakeFiles/spice_steering.dir/registry.cpp.o" "gcc" "src/steering/CMakeFiles/spice_steering.dir/registry.cpp.o.d"
  "/root/repo/src/steering/session_log.cpp" "src/steering/CMakeFiles/spice_steering.dir/session_log.cpp.o" "gcc" "src/steering/CMakeFiles/spice_steering.dir/session_log.cpp.o.d"
  "/root/repo/src/steering/steerable.cpp" "src/steering/CMakeFiles/spice_steering.dir/steerable.cpp.o" "gcc" "src/steering/CMakeFiles/spice_steering.dir/steerable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/spice_net.dir/DependInfo.cmake"
  "/root/repo/build/src/smd/CMakeFiles/spice_smd.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/spice_md.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spice_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
