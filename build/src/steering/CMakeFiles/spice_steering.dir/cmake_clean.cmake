file(REMOVE_RECURSE
  "CMakeFiles/spice_steering.dir/haptic.cpp.o"
  "CMakeFiles/spice_steering.dir/haptic.cpp.o.d"
  "CMakeFiles/spice_steering.dir/imd.cpp.o"
  "CMakeFiles/spice_steering.dir/imd.cpp.o.d"
  "CMakeFiles/spice_steering.dir/messages.cpp.o"
  "CMakeFiles/spice_steering.dir/messages.cpp.o.d"
  "CMakeFiles/spice_steering.dir/registry.cpp.o"
  "CMakeFiles/spice_steering.dir/registry.cpp.o.d"
  "CMakeFiles/spice_steering.dir/session_log.cpp.o"
  "CMakeFiles/spice_steering.dir/session_log.cpp.o.d"
  "CMakeFiles/spice_steering.dir/steerable.cpp.o"
  "CMakeFiles/spice_steering.dir/steerable.cpp.o.d"
  "libspice_steering.a"
  "libspice_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
