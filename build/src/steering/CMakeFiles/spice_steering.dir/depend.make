# Empty dependencies file for spice_steering.
# This may be replaced when dependencies are built.
