file(REMOVE_RECURSE
  "libspice_steering.a"
)
