# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_md_forces[1]_include.cmake")
include("/root/repo/build/tests/test_md_engine[1]_include.cmake")
include("/root/repo/build/tests/test_pore[1]_include.cmake")
include("/root/repo/build/tests/test_smd[1]_include.cmake")
include("/root/repo/build/tests/test_fe_jarzynski[1]_include.cmake")
include("/root/repo/build/tests/test_fe_reference[1]_include.cmake")
include("/root/repo/build/tests/test_fe_bar[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_grid[1]_include.cmake")
include("/root/repo/build/tests/test_steering[1]_include.cmake")
include("/root/repo/build/tests/test_spice_core[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
