file(REMOVE_RECURSE
  "CMakeFiles/test_md_forces.dir/test_md_forces.cpp.o"
  "CMakeFiles/test_md_forces.dir/test_md_forces.cpp.o.d"
  "test_md_forces"
  "test_md_forces.pdb"
  "test_md_forces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_forces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
