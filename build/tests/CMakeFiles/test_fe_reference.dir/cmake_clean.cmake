file(REMOVE_RECURSE
  "CMakeFiles/test_fe_reference.dir/test_fe_reference.cpp.o"
  "CMakeFiles/test_fe_reference.dir/test_fe_reference.cpp.o.d"
  "test_fe_reference"
  "test_fe_reference.pdb"
  "test_fe_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fe_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
