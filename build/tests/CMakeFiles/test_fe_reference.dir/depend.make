# Empty dependencies file for test_fe_reference.
# This may be replaced when dependencies are built.
