file(REMOVE_RECURSE
  "CMakeFiles/test_fe_jarzynski.dir/test_fe_jarzynski.cpp.o"
  "CMakeFiles/test_fe_jarzynski.dir/test_fe_jarzynski.cpp.o.d"
  "test_fe_jarzynski"
  "test_fe_jarzynski.pdb"
  "test_fe_jarzynski[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fe_jarzynski.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
