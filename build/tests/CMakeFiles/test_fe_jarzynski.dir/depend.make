# Empty dependencies file for test_fe_jarzynski.
# This may be replaced when dependencies are built.
