# Empty compiler generated dependencies file for test_spice_core.
# This may be replaced when dependencies are built.
