file(REMOVE_RECURSE
  "CMakeFiles/test_spice_core.dir/test_spice_core.cpp.o"
  "CMakeFiles/test_spice_core.dir/test_spice_core.cpp.o.d"
  "test_spice_core"
  "test_spice_core.pdb"
  "test_spice_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spice_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
