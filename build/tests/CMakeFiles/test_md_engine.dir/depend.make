# Empty dependencies file for test_md_engine.
# This may be replaced when dependencies are built.
