file(REMOVE_RECURSE
  "CMakeFiles/test_fe_bar.dir/test_fe_bar.cpp.o"
  "CMakeFiles/test_fe_bar.dir/test_fe_bar.cpp.o.d"
  "test_fe_bar"
  "test_fe_bar.pdb"
  "test_fe_bar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fe_bar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
