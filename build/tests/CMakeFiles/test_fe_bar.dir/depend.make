# Empty dependencies file for test_fe_bar.
# This may be replaced when dependencies are built.
