file(REMOVE_RECURSE
  "CMakeFiles/test_pore.dir/test_pore.cpp.o"
  "CMakeFiles/test_pore.dir/test_pore.cpp.o.d"
  "test_pore"
  "test_pore.pdb"
  "test_pore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
