# Empty dependencies file for test_pore.
# This may be replaced when dependencies are built.
